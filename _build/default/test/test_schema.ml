(* Catalog definition language tests. *)

open Helpers
module Ctype = Cobj.Ctype
module Value = Cobj.Value

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let must_fail what = function
  | Ok _ -> Alcotest.failf "%s should have failed" what
  | Error _ -> ()

let test_types () =
  let t src = ok (Lang.Schema.ctype src) in
  Alcotest.check ctype "basic" Ctype.TInt (t "INT");
  Alcotest.check ctype "case-insensitive" Ctype.TFloat (t "float");
  Alcotest.check ctype "set" Ctype.(TSet TString) (t "P STRING");
  Alcotest.check ctype "nested set" Ctype.(TSet (TSet TInt)) (t "P P INT");
  Alcotest.check ctype "list" Ctype.(TList TBool) (t "L BOOL");
  Alcotest.check ctype "tuple"
    (Ctype.ttuple [ ("a", Ctype.TInt); ("b", Ctype.TSet Ctype.TString) ])
    (t "(a : INT, b : P STRING)");
  Alcotest.check ctype "deep"
    (Ctype.ttuple
       [ ("p", Ctype.ttuple [ ("q", Ctype.TAny) ]); ("r", Ctype.TInt) ])
    (t "(p : (q : ANY), r : INT)");
  must_fail "unknown type" (Lang.Schema.ctype "WHATEVER");
  must_fail "trailing" (Lang.Schema.ctype "INT INT")

let test_simple_catalog () =
  let cat =
    ok
      (Lang.Schema.catalog
         {| TABLE T (a : INT, s : P INT) KEY (a) =
              { (a = 1, s = {1, 2}), (a = 2, s = {}) };
            TABLE U INT = { 5, 6, 7 } |})
  in
  Alcotest.(check (list string)) "tables" [ "T"; "U" ] (Cobj.Catalog.names cat);
  Alcotest.check Alcotest.int "|T|" 2
    (Cobj.Table.cardinality (Cobj.Catalog.find_exn "T" cat));
  Alcotest.check value "U contents"
    (vset [ vi 5; vi 6; vi 7 ])
    (Cobj.Table.to_value (Cobj.Catalog.find_exn "U" cat))

let test_computed_table () =
  let cat =
    ok
      (Lang.Schema.catalog
         {| TABLE BASE INT = { 1, 2, 3 };
            TABLE SQUARES (n : INT, sq : INT) KEY (n) =
              SELECT (n = b, sq = b * b) FROM BASE b |})
  in
  let squares = Cobj.Table.to_value (Cobj.Catalog.find_exn "SQUARES" cat) in
  Alcotest.check value "computed from earlier table"
    (vset
       [
         tup [ ("n", vi 1); ("sq", vi 1) ];
         tup [ ("n", vi 2); ("sq", vi 4) ];
         tup [ ("n", vi 3); ("sq", vi 9) ];
       ])
    squares

let test_conformance_enforced () =
  must_fail "wrong row type"
    (Lang.Schema.catalog {| TABLE T (a : INT) = { (a = "x",) } |});
  must_fail "key violation"
    (Lang.Schema.catalog
       {| TABLE T (a : INT, b : INT) KEY (a) =
            { (a = 1, b = 1), (a = 1, b = 2) } |})

let test_syntax_errors () =
  must_fail "missing =" (Lang.Schema.catalog "TABLE T (a : INT) { }");
  must_fail "not a def" (Lang.Schema.catalog "SELECT x FROM X x");
  must_fail "unterminated" (Lang.Schema.catalog "TABLE T (a : INT")

let test_movies_file_queries () =
  (* keep the shipped example file loadable and queryable *)
  let ic = open_in "../examples/movies.nql" in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  let cat = ok (Lang.Schema.catalog src) in
  let q =
    "SELECT m.title FROM MOVIES m WHERE FORALL c IN m.cast (c NOT IN \
     (SELECT a.name FROM ACTORS a WHERE a.born < 1945))"
  in
  let v = run_strategy Core.Pipeline.Decorrelated cat q in
  Alcotest.check value "movies with no pre-1945 cast"
    (vset [ vs "Alien"; vs "Aliens"; vs "Paddington" ])
    v;
  strategies_agree ~catalog:cat q

let suite =
  [
    Alcotest.test_case "type parsing" `Quick test_types;
    Alcotest.test_case "simple catalog" `Quick test_simple_catalog;
    Alcotest.test_case "computed table" `Quick test_computed_table;
    Alcotest.test_case "conformance enforced" `Quick test_conformance_enforced;
    Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
    Alcotest.test_case "movies example file" `Quick test_movies_file_queries;
  ]

(* --- SORT and CLASS definitions (§3.1 style) ----------------------------- *)

let company_src =
  {| SORT Address (street : STRING, nr : STRING, city : STRING);

     CLASS Employee WITH EXTENSION EMP ATTRIBUTES
       (name : STRING, address : Address, sal : INT,
        children : P (name : STRING, age : INT))
       KEY (name) =
       { (name = "ada",
          address = (street = "s1", nr = "1", city = "c1"),
          sal = 100,
          children = {(name = "kim", age = 4)}),
         (name = "bob",
          address = (street = "s2", nr = "2", city = "c1"),
          sal = 80,
          children = {}) }
     END Employee;

     CLASS Department WITH EXTENSION DEPT ATTRIBUTES
       (name : STRING, address : Address, emps : P STRING) KEY (name) =
       { (name = "d1", address = (street = "s1", nr = "9", city = "c1"),
          emps = {"ada", "bob"}) }
     END Department |}

let test_sorts_and_classes () =
  let cat = ok (Lang.Schema.catalog company_src) in
  Alcotest.(check (list string)) "extensions named explicitly"
    [ "DEPT"; "EMP" ] (Cobj.Catalog.names cat);
  (* the sort expanded structurally *)
  let emp = Cobj.Catalog.find_exn "EMP" cat in
  (match Ctype.field "address" (Cobj.Table.elt emp) with
  | Some (Ctype.TTuple fields) ->
    Alcotest.(check (list string)) "address fields"
      [ "city"; "nr"; "street" ] (List.map fst fields)
  | _ -> Alcotest.fail "address is not a tuple");
  (* the paper's Q1 runs against it *)
  let q1 =
    "SELECT d.name FROM DEPT d WHERE d.address.street IN (SELECT \
     e.address.street FROM EMP e WHERE e.name IN d.emps)"
  in
  let v = run_strategy Core.Pipeline.Decorrelated cat q1 in
  Alcotest.check value "d1 qualifies" (vset [ vs "d1" ]) v

let test_unknown_sort () =
  must_fail "unknown sort"
    (Lang.Schema.catalog "TABLE T (a : Address) = {}")

let test_sort_shadows_nothing () =
  (* sorts do not capture basic type names *)
  must_fail "INT not redefinable as a sort reference"
    (Lang.Schema.catalog "SORT INT STRING; TABLE T INT = {\"x\"}")

let suite =
  suite
  @ [
      Alcotest.test_case "sorts and classes" `Quick test_sorts_and_classes;
      Alcotest.test_case "unknown sort" `Quick test_unknown_sort;
      Alcotest.test_case "sorts cannot shadow basic types" `Quick
        test_sort_shadows_nothing;
    ]

(* --- rendering (round trip) ---------------------------------------------- *)

let catalogs_equal c1 c2 =
  Cobj.Catalog.names c1 = Cobj.Catalog.names c2
  && List.for_all2
       (fun t1 t2 ->
         Cobj.Table.name t1 = Cobj.Table.name t2
         && Ctype.equal (Cobj.Table.elt t1) (Cobj.Table.elt t2)
         && Cobj.Table.key t1 = Cobj.Table.key t2
         && Value.equal (Cobj.Table.to_value t1) (Cobj.Table.to_value t2))
       (Cobj.Catalog.tables c1) (Cobj.Catalog.tables c2)

let test_render_roundtrip () =
  List.iter
    (fun cat ->
      let rendered = Lang.Schema.render cat in
      match Lang.Schema.catalog rendered with
      | Error msg ->
        Alcotest.failf "rendered catalog does not parse: %s@.%s" msg rendered
      | Ok cat' ->
        Alcotest.check Alcotest.bool "round trip preserves the catalog" true
          (catalogs_equal cat cat'))
    [
      Workload.Gen.table1 ();
      Workload.Gen.xy { Workload.Gen.default_xy with nx = 12; ny = 9 };
      Workload.Gen.company
        { Workload.Gen.default_company with ndepts = 2; nemps_per_dept = 3 };
      Cobj.Catalog.empty;
    ]

let render_roundtrip_random =
  qcheck ~count:30 "render/parse round trip on random catalogs"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let cat =
        Workload.Gen.xy
          { Workload.Gen.default_xy with nx = 10; ny = 10; seed }
      in
      match Lang.Schema.catalog (Lang.Schema.render cat) with
      | Error _ -> false
      | Ok cat' -> catalogs_equal cat cat')

let suite =
  suite
  @ [
      Alcotest.test_case "render round trip" `Quick test_render_roundtrip;
      render_roundtrip_random;
    ]
