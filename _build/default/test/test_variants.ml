(* Variant types and conditionals — the TM type constructors the paper's
   §3.1 lists beyond tuple/set/list, end to end: values, types, parsing,
   evaluation, compilation, schema files, and optimized nested queries over
   a variant-typed catalog. *)

open Helpers
module Value = Cobj.Value
module Ctype = Cobj.Ctype
module Ast = Lang.Ast

(* --- value and type layer ------------------------------------------------ *)

let test_value_layer () =
  let circle = Value.Variant ("circle", Value.Float 1.5) in
  let square = Value.Variant ("square", Value.Float 2.0) in
  Alcotest.check Alcotest.bool "ordering by tag first" true
    (Value.compare circle square < 0);
  Alcotest.check Alcotest.string "tag" "circle" (Value.variant_tag circle);
  Alcotest.check value "payload" (Value.Float 1.5)
    (Value.variant_payload "circle" circle);
  Alcotest.check_raises "wrong tag"
    (Value.Type_error "variant tagged circle, expected square") (fun () ->
      ignore (Value.variant_payload "square" circle));
  (* sets of variants dedup correctly *)
  Alcotest.check Alcotest.int "set of variants" 2
    (Value.set_card (Value.set [ circle; square; circle ]))

let shape_t =
  Ctype.tvariant
    [ ("circle", Ctype.TFloat);
      ("rect", Ctype.ttuple [ ("w", Ctype.TFloat); ("h", Ctype.TFloat) ]) ]

let test_type_layer () =
  let circle = Value.Variant ("circle", Value.Float 1.5) in
  Alcotest.check Alcotest.bool "conforms" true (Ctype.conforms circle shape_t);
  Alcotest.check Alcotest.bool "unknown tag rejected" false
    (Ctype.conforms (Value.Variant ("tri", Value.Int 1)) shape_t);
  (* width join unions alternatives *)
  let a = Ctype.tvariant [ ("circle", Ctype.TFloat) ] in
  let b = Ctype.tvariant [ ("rect", Ctype.TInt) ] in
  Alcotest.(check (option ctype))
    "join unions tags"
    (Some (Ctype.tvariant [ ("circle", Ctype.TFloat); ("rect", Ctype.TInt) ]))
    (Ctype.join a b);
  Alcotest.(check (option ctype))
    "infer" (Some (Ctype.tvariant [ ("circle", Ctype.TFloat) ]))
    (Ctype.infer circle)

(* --- syntax -------------------------------------------------------------- *)

let test_parsing () =
  Alcotest.check expr "construction"
    (Ast.VariantE ("circle", Ast.Const (Value.Float 1.5)))
    (parse "circle!1.5");
  Alcotest.check expr "is" (Ast.IsTag (Ast.Var "s", "rect")) (parse "s IS rect");
  Alcotest.check expr "as then field"
    (Ast.Field (Ast.AsTag (Ast.Var "s", "rect"), "w"))
    (parse "s AS rect.w");
  Alcotest.check expr "if"
    (Ast.If (parse "s IS circle", Ast.vint 1, Ast.vint 2))
    (parse "IF s IS circle THEN 1 ELSE 2");
  (* round trips *)
  List.iter
    (fun src ->
      let e = parse src in
      Alcotest.check expr src e (parse (Lang.Pretty.to_string e)))
    [
      "circle!(x.r * 2.0)";
      "IF a = 1 THEN rect!(w = 1.0, h = 2.0) ELSE circle!0.5";
      "s IS circle AND s AS circle > 1.0";
      "{circle!1.0, rect!(w = 1.0, h = 1.0)}";
      "IF c THEN 1 ELSE 2 + 3";
    ]

(* --- evaluation ----------------------------------------------------------- *)

let cat0 = Cobj.Catalog.empty

let eval src = Lang.Interp.run cat0 (parse src)

let test_evaluation () =
  Alcotest.check value "if true" (vi 1) (eval "IF 1 < 2 THEN 1 ELSE 2");
  Alcotest.check value "is" (Value.Bool true) (eval "circle!1.5 IS circle");
  Alcotest.check value "is not" (Value.Bool false) (eval "circle!1.5 IS rect");
  Alcotest.check value "as" (Value.Float 1.5)
    (eval "(circle!1.5) AS circle");
  Alcotest.check value "dispatch"
    (Value.Float 4.0)
    (eval
       "(IF s IS rect THEN s AS rect.w * s AS rect.h ELSE 0.0) WITH s = \
        rect!(w = 2.0, h = 2.0)");
  (* compiled agrees, including the error case *)
  let e = parse "(circle!1.0) AS rect" in
  (match Lang.Interp.run cat0 e with
  | _ -> Alcotest.fail "expected a tag error"
  | exception Value.Type_error _ -> ());
  match Engine.Compile.expr cat0 e Cobj.Env.empty with
  | _ -> Alcotest.fail "expected a tag error (compiled)"
  | exception Value.Type_error _ -> ()

(* --- a variant-typed catalog end to end ---------------------------------- *)

let shapes_src =
  {| SORT Shape V (circle : FLOAT, rect : (w : FLOAT, h : FLOAT));

     TABLE DRAWINGS (id : INT, layer : INT, shape : Shape) KEY (id) =
       { (id = 1, layer = 0, shape = circle!1.0),
         (id = 2, layer = 0, shape = rect!(w = 2.0, h = 3.0)),
         (id = 3, layer = 1, shape = circle!0.5),
         (id = 4, layer = 1, shape = rect!(w = 1.0, h = 1.0)),
         (id = 5, layer = 2, shape = circle!4.0) };

     TABLE LAYERS (nr : INT, name : STRING) KEY (nr) =
       { (nr = 0, name = "base"), (nr = 1, name = "mid"),
         (nr = 2, name = "top"), (nr = 3, name = "empty") } |}

let shapes =
  match Lang.Schema.catalog shapes_src with
  | Ok c -> c
  | Error msg -> failwith msg

let area = "IF d.shape IS circle THEN 3 * d.shape AS circle * d.shape AS \
            circle ELSE d.shape AS rect.w * d.shape AS rect.h"

let test_variant_queries () =
  (* every strategy agrees on nested queries with variant dispatch *)
  List.iter
    (fun src -> strategies_agree ~catalog:shapes src)
    [
      (* layers containing a circle *)
      "SELECT l.name FROM LAYERS l WHERE EXISTS d IN (SELECT d FROM \
       DRAWINGS d WHERE d.layer = l.nr) (d.shape IS circle)";
      (* layers with no drawings at all: dangling-sensitive *)
      "SELECT l.name FROM LAYERS l WHERE COUNT(SELECT d FROM DRAWINGS d \
       WHERE d.layer = l.nr) = 0";
      (* per-layer areas, nest join over a variant-dispatching function *)
      Printf.sprintf
        "SELECT (n = l.name, areas = (SELECT %s FROM DRAWINGS d WHERE \
         d.layer = l.nr)) FROM LAYERS l"
        area;
    ]

let test_variant_schema_roundtrip () =
  let rendered = Lang.Schema.render shapes in
  match Lang.Schema.catalog rendered with
  | Error msg -> Alcotest.failf "render did not reparse: %s" msg
  | Ok c ->
    Alcotest.check value "DRAWINGS round trip"
      (Cobj.Table.to_value (Cobj.Catalog.find_exn "DRAWINGS" shapes))
      (Cobj.Table.to_value (Cobj.Catalog.find_exn "DRAWINGS" c))

let test_type_errors () =
  let ill src =
    match Lang.Types.check_query shapes (parse src) with
    | Ok _ -> Alcotest.failf "%s should be ill-typed" src
    | Error _ -> ()
  in
  ill "SELECT d.shape AS nope FROM DRAWINGS d";
  ill "SELECT d.shape IS nope FROM DRAWINGS d";
  ill "SELECT d.id AS circle FROM DRAWINGS d";
  ill "SELECT IF d.id THEN 1 ELSE 2 FROM DRAWINGS d";
  ill "SELECT IF true THEN 1 ELSE \"x\" FROM DRAWINGS d"

let test_simplifier_on_variants () =
  Alcotest.check expr "is on construction folds" (parse "true")
    (Core.Simplify.expr cat0 (parse "circle!1.0 IS circle"));
  Alcotest.check expr "as on matching construction"
    (Ast.Const (Value.Float 1.0))
    (Core.Simplify.expr cat0 (parse "(circle!1.0) AS circle"));
  Alcotest.check expr "if folds to taken branch" (parse "x.a")
    (Core.Simplify.expr cat0 (parse "IF 1 < 2 THEN x.a ELSE MIN({})"))

let suite =
  [
    Alcotest.test_case "value layer" `Quick test_value_layer;
    Alcotest.test_case "type layer" `Quick test_type_layer;
    Alcotest.test_case "parsing and round trips" `Quick test_parsing;
    Alcotest.test_case "evaluation (interp + compiled)" `Quick test_evaluation;
    Alcotest.test_case "nested queries over variants" `Quick
      test_variant_queries;
    Alcotest.test_case "schema round trip" `Quick test_variant_schema_roundtrip;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "simplifier" `Quick test_simplifier_on_variants;
  ]
