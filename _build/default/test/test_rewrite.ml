(* Logical rewriter tests: each rule, plus semantic preservation. *)

open Helpers
module Plan = Algebra.Plan
module Ast = Lang.Ast
module Sset = Ast.String_set

let cat = xy_catalog ()
let x = Plan.Table { name = "X"; var = "x" }
let y = Plan.Table { name = "Y"; var = "y" }

let rewrite ?(live = []) p =
  Core.Rewrite.plan ~live:(Sset.of_list live) p

let rows p = Algebra.Sem.rows cat Cobj.Env.empty p

let semantics_preserved name before after =
  let b = rows before and a = rows after in
  if not (List.length b = List.length a && List.for_all2 Cobj.Env.equal b a)
  then Alcotest.failf "%s changed semantics" name

let test_select_fusion () =
  let p =
    Plan.Select
      { pred = parse "x.a > 0";
        input = Plan.Select { pred = parse "x.b < 9"; input = x } }
  in
  let r = rewrite ~live:[ "x" ] p in
  (match r with
  | Plan.Select { input = Plan.Table _; _ } -> ()
  | _ -> Alcotest.failf "selects not fused: %s" (Plan.to_string r));
  semantics_preserved "fusion" p r

let test_pushdown_into_join () =
  let p =
    Plan.Select
      { pred = parse "x.a > 0 AND y.c > 1 AND x.b = y.d";
        input = Plan.Join { pred = parse "true"; left = x; right = y } }
  in
  let r = rewrite ~live:[ "x"; "y" ] p in
  (* both one-sided conjuncts pushed below, two-sided merged into the join *)
  (match r with
  | Plan.Join { pred; left = Plan.Select _; right = Plan.Select _ } ->
    Alcotest.check Alcotest.bool "join predicate got the equi conjunct" true
      (Ast.occurs_free "y" pred && Ast.occurs_free "x" pred)
  | _ -> Alcotest.failf "unexpected shape: %s" (Plan.to_string r));
  semantics_preserved "pushdown" p r

let test_pushdown_left_of_semijoin () =
  let semi = Plan.Semijoin { pred = parse "x.b = y.d"; left = x; right = y } in
  let p = Plan.Select { pred = parse "x.a > 1"; input = semi } in
  let r = rewrite ~live:[ "x" ] p in
  (match r with
  | Plan.Semijoin { left = Plan.Select _; _ } -> ()
  | _ -> Alcotest.failf "not pushed below semijoin: %s" (Plan.to_string r));
  semantics_preserved "semijoin pushdown" p r

let test_no_pushdown_into_right_of_antijoin () =
  (* pushing a predicate into the right side of an antijoin would change
     which rows count as matches — it must stay above *)
  let anti = Plan.Antijoin { pred = parse "x.b = y.d"; left = x; right = y } in
  let p = Plan.Select { pred = parse "x.a > 1"; input = anti } in
  let r = rewrite ~live:[ "x" ] p in
  (match r with
  | Plan.Antijoin { right = Plan.Table _; left = Plan.Select _; _ } -> ()
  | _ -> Alcotest.failf "unexpected shape: %s" (Plan.to_string r));
  semantics_preserved "antijoin left pushdown" p r

let test_dead_nestjoin_elimination () =
  let nj =
    Plan.Nestjoin
      { pred = parse "x.b = y.d"; func = parse "y.c"; label = "g"; left = x;
        right = y }
  in
  (* label not referenced above: the nest join disappears *)
  let r = rewrite ~live:[ "x" ] nj in
  (match r with
  | Plan.Table _ -> ()
  | _ -> Alcotest.failf "dead nest join kept: %s" (Plan.to_string r));
  (* label referenced: kept *)
  let r = rewrite ~live:[ "x"; "g" ] nj in
  match r with
  | Plan.Nestjoin _ -> ()
  | _ -> Alcotest.failf "live nest join dropped: %s" (Plan.to_string r)

let test_unit_elimination () =
  let p = Plan.Join { pred = parse "true"; left = Plan.Unit; right = x } in
  match rewrite ~live:[ "x" ] p with
  | Plan.Table _ -> ()
  | r -> Alcotest.failf "unit join kept: %s" (Plan.to_string r)

let test_query_level () =
  let q =
    {
      Plan.plan =
        Plan.Select
          { pred = parse "x.a > 0";
            input =
              Plan.Nestjoin
                { pred = parse "x.b = y.d"; func = parse "y.c"; label = "g";
                  left = x; right = y } };
      result = parse "x.a";
    }
  in
  (* result only uses x.a and the selection only x.a: nest join is dead *)
  let r = Core.Rewrite.query q in
  let has_nestjoin =
    Plan.fold
      (fun acc n -> acc || match n with Plan.Nestjoin _ -> true | _ -> false)
      false r.Plan.plan
  in
  Alcotest.check Alcotest.bool "dead nest join eliminated at query level"
    false has_nestjoin;
  Alcotest.check value "same result" (Algebra.Sem.run cat q)
    (Algebra.Sem.run cat r)

(* property: rewriting never changes semantics on a family of random plans *)
let plan_gen =
  let open QCheck2.Gen in
  let pred =
    oneofl
      [ "x.b = y.d"; "x.b = y.d AND x.a > 1"; "x.a < y.c"; "true" ]
  in
  let sel = oneofl [ "x.a > 0"; "x.b < 9 AND x.a > 1"; "COUNT(x.s) > 0" ] in
  map2
    (fun (p, s) shape ->
      let join p =
        match shape mod 4 with
        | 0 -> Plan.Join { pred = parse p; left = x; right = y }
        | 1 -> Plan.Semijoin { pred = parse p; left = x; right = y }
        | 2 -> Plan.Antijoin { pred = parse p; left = x; right = y }
        | _ ->
          Plan.Nestjoin
            { pred = parse p; func = parse "y.c"; label = "g"; left = x;
              right = y }
      in
      Plan.Select { pred = parse s; input = join p })
    (pair pred sel) (int_range 0 3)

let prop_rewrite_preserves_semantics =
  qcheck ~count:100 "rewriting preserves semantics" plan_gen (fun p ->
      let live =
        Sset.of_list (Plan.vars_of p)
      in
      let r = Core.Rewrite.plan ~live p in
      let before = rows p and after = rows r in
      List.length before = List.length after
      && List.for_all2 Cobj.Env.equal before after)

let suite =
  [
    Alcotest.test_case "selection fusion" `Quick test_select_fusion;
    Alcotest.test_case "pushdown into join" `Quick test_pushdown_into_join;
    Alcotest.test_case "pushdown below semijoin left" `Quick
      test_pushdown_left_of_semijoin;
    Alcotest.test_case "antijoin right untouched" `Quick
      test_no_pushdown_into_right_of_antijoin;
    Alcotest.test_case "dead nest join elimination" `Quick
      test_dead_nestjoin_elimination;
    Alcotest.test_case "unit elimination" `Quick test_unit_elimination;
    Alcotest.test_case "query-level rewrite" `Quick test_query_level;
    prop_rewrite_preserves_semantics;
  ]
