(* Expression compiler tests: compiled closures must agree with the
   reference interpreter on every expression and environment — including
   the Undefined-aggregate behaviour of predicates. *)

open Helpers
module Value = Cobj.Value
module Env = Cobj.Env
module Ast = Lang.Ast

let cat = xy_catalog ()

let env =
  Env.of_bindings
    [
      ("x", tup [ ("a", vi 3); ("b", vi 1); ("s", vset [ vi 1; vi 2 ]) ]);
      ("n", vi 7);
      ("e", vset []);
    ]

let agree src =
  let e = Ast.resolve_tables cat (parse src) in
  let interpreted =
    match Lang.Interp.eval cat env e with
    | v -> Ok v
    | exception Lang.Interp.Undefined m -> Error (`Undefined m)
    | exception Value.Type_error m -> Error (`Type m)
  in
  let compiled =
    match Engine.Compile.expr cat e env with
    | v -> Ok v
    | exception Lang.Interp.Undefined m -> Error (`Undefined m)
    | exception Value.Type_error m -> Error (`Type m)
  in
  match interpreted, compiled with
  | Ok a, Ok b ->
    Alcotest.check value src a b
  | Error (`Undefined _), Error (`Undefined _)
  | Error (`Type _), Error (`Type _) ->
    ()
  | _, _ -> Alcotest.failf "%s: interpreter and compiler disagree on outcome" src

let corpus =
  [
    "1 + 2 * n - x.a";
    "7 / 2"; "7.5 / 2"; "7 MOD 3"; "-x.a"; "- -3";
    "x.a = 3 AND x.b < 2 OR false";
    "NOT (x.a IN x.s)";
    "x.s UNION {3} EXCEPT {1}";
    "x.s SUBSETEQ {1, 2, 3}"; "{1} SUBSET x.s"; "x.s SUPSETEQ {2}";
    "COUNT(x.s)"; "SUM(x.s)"; "MIN(x.s)"; "MAX(x.s)"; "AVG(x.s)";
    "MIN(e)"; (* undefined *)
    "COUNT(e) = 0 AND MIN(e) > 0"; (* short-circuit saves it *)
    "EXISTS v IN x.s (v = x.b)";
    "FORALL v IN x.s (v < n)";
    "x.a IN z WITH z = {3, 4}";
    "UNNEST({{1}, {2, 3}, {}})";
    "(u = x.a, v = {x.b})";
    "[1, 2, 2]";
    "COUNT(X)"; (* table reference *)
    "COUNT(SELECT y FROM Y y WHERE y.d = x.b)"; (* inline SFW fallback *)
    "1 / 0"; (* type error both sides *)
    "x.a + \"s\""; (* type error *)
  ]

let test_corpus () = List.iter agree corpus

let test_pred_undefined_is_false () =
  let p = parse "MIN(e) > 0" in
  Alcotest.check Alcotest.bool "undefined → false" false
    (Engine.Compile.pred cat p env)

let test_disabled_falls_back () =
  Engine.Compile.enabled := false;
  Fun.protect
    ~finally:(fun () -> Engine.Compile.enabled := true)
    (fun () -> List.iter agree corpus)

(* randomized: reuse the parser fuzz generator, evaluating under [env];
   outcomes (value / undefined / type error) must match exactly *)
let prop_random_agreement =
  qcheck ~count:400 "compiled = interpreted on random expressions"
    Test_parser.expr_gen
    (fun e0 ->
      let e =
        Ast.resolve_tables cat
          (Ast.subst "x" (Ast.Const (Env.find "x" env))
             (Ast.subst "y" (Ast.Const (vset [ vi 1 ])) e0))
      in
      let outcome f =
        match f () with
        | v -> `Ok v
        | exception Lang.Interp.Undefined _ -> `Undefined
        | exception Value.Type_error _ -> `Type_error
        | exception Stack_overflow -> `Overflow
      in
      let a = outcome (fun () -> Lang.Interp.eval cat Env.empty e) in
      let b = outcome (fun () -> Engine.Compile.expr cat e Env.empty) in
      match a, b with
      | `Ok va, `Ok vb -> Value.equal va vb
      | `Undefined, `Undefined | `Type_error, `Type_error
      | `Overflow, `Overflow ->
        true
      | _, _ -> false)

let suite =
  [
    Alcotest.test_case "corpus agreement" `Quick test_corpus;
    Alcotest.test_case "pred: undefined is false" `Quick
      test_pred_undefined_is_false;
    Alcotest.test_case "disabled falls back to interpreter" `Quick
      test_disabled_falls_back;
    prop_random_agreement;
  ]
