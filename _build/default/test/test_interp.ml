(* Reference interpreter tests: the denotational semantics of the language. *)

open Helpers
module Value = Cobj.Value

let cat = xy_catalog ()

let eval src = Lang.Interp.run cat (Lang.Ast.resolve_tables cat (parse src))

let check_eval name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.check value src expected (eval src))

let test_arith =
  [
    check_eval "int arithmetic" "1 + 2 * 3 - 4" (vi 3);
    check_eval "mixed arithmetic" "1 + 0.5" (Value.Float 1.5);
    check_eval "integer division" "7 / 2" (vi 3);
    check_eval "float division" "7.0 / 2" (Value.Float 3.5);
    check_eval "mod" "7 MOD 3" (vi 1);
    check_eval "negation" "-(2 + 3)" (vi (-5));
  ]

let test_sets =
  [
    check_eval "set literal dedups" "{3, 1, 3, 2}" (vset [ vi 1; vi 2; vi 3 ]);
    check_eval "union" "{1, 2} UNION {2, 3}" (vset [ vi 1; vi 2; vi 3 ]);
    check_eval "except" "{1, 2, 3} EXCEPT {2}" (vset [ vi 1; vi 3 ]);
    check_eval "membership" "2 IN {1, 2}" (Value.Bool true);
    check_eval "subseteq" "{1} SUBSETEQ {1, 2}" (Value.Bool true);
    check_eval "strict subset of self" "{1} SUBSET {1}" (Value.Bool false);
    check_eval "supset" "{1, 2} SUPSET {1}" (Value.Bool true);
    check_eval "unnest" "UNNEST({{1, 2}, {2, 3}, {}})"
      (vset [ vi 1; vi 2; vi 3 ]);
  ]

let test_aggregates =
  [
    check_eval "count" "COUNT({4, 5, 6})" (vi 3);
    check_eval "count empty" "COUNT({})" (vi 0);
    check_eval "sum" "SUM({1, 2, 3})" (vi 6);
    check_eval "sum empty" "SUM({})" (vi 0);
    check_eval "min" "MIN({3, 1, 2})" (vi 1);
    check_eval "max" "MAX({3, 1, 2})" (vi 3);
    check_eval "avg" "AVG({1, 2, 3})" (Value.Float 2.0);
  ]

let test_min_empty_undefined () =
  Alcotest.check_raises "MIN({}) undefined"
    (Lang.Interp.Undefined "MIN of empty collection") (fun () ->
      ignore (eval "MIN({})"))

let test_truth_partiality () =
  (* truth treats an undefined aggregate as false, both bare and negated *)
  let p = parse "MIN({}) > 0" in
  Alcotest.check Alcotest.bool "undefined is false" false
    (Lang.Interp.truth cat Cobj.Env.empty p);
  let q = parse "NOT (MIN({}) > 0)" in
  Alcotest.check Alcotest.bool "negation of undefined is also false" false
    (Lang.Interp.truth cat Cobj.Env.empty q)

let test_quantifiers =
  [
    check_eval "exists true" "EXISTS v IN {1, 2} (v = 2)" (Value.Bool true);
    check_eval "exists empty" "EXISTS v IN {} (true)" (Value.Bool false);
    check_eval "forall empty" "FORALL v IN {} (false)" (Value.Bool true);
    check_eval "forall" "FORALL v IN {2, 4} (v MOD 2 = 0)" (Value.Bool true);
    check_eval "nested quantifiers"
      "EXISTS v IN {{1}, {2}} (FORALL w IN v (w = 2))" (Value.Bool true);
  ]

let test_sfw =
  [
    check_eval "simple select" "SELECT y.c FROM Y y WHERE y.d = 1"
      (vset [ vi 1; vi 2 ]);
    check_eval "select over literal set" "SELECT v + 1 FROM {1, 2, 3} v"
      (vset [ vi 2; vi 3; vi 4 ]);
    check_eval "dependent from"
      "SELECT w FROM X x, x.s w WHERE x.a = 1"
      (vset [ vi 1; vi 2 ]);
    check_eval "correlated subquery"
      "SELECT x.a FROM X x WHERE x.b IN (SELECT y.d FROM Y y WHERE y.c = x.a)"
      (vset [ vi 1; vi 2; vi 3 ]);
    check_eval "with clause"
      "SELECT x.a FROM X x WHERE x.s = z WITH z = {1, 2}" (vset [ vi 1 ]);
  ]

let test_shadowing () =
  (* inner FROM binder shadows the outer one *)
  Alcotest.check value "shadowed x"
    (vset [ vi 0; vi 1; vi 2; vi 3 ])
    (eval "SELECT x.a FROM X x WHERE COUNT(SELECT x FROM X x) = 5")

let test_short_circuit () =
  Alcotest.check value "AND short-circuits before undefined MIN"
    (Value.Bool false)
    (eval "{} <> {} AND MIN({}) > 0")

let prop_set_literal_matches_model =
  qcheck "SetE evaluation equals Value.set"
    QCheck2.Gen.(list_size (int_range 0 6) value_gen)
    (fun xs ->
      let e = Lang.Ast.SetE (List.map (fun v -> Lang.Ast.Const v) xs) in
      Value.equal (Lang.Interp.run cat e) (Value.set xs))

let suite =
  test_arith @ test_sets @ test_aggregates
  @ [
      Alcotest.test_case "MIN of empty is undefined" `Quick
        test_min_empty_undefined;
      Alcotest.test_case "truth is partial on undefined" `Quick
        test_truth_partiality;
    ]
  @ test_quantifiers @ test_sfw
  @ [
      Alcotest.test_case "variable shadowing" `Quick test_shadowing;
      Alcotest.test_case "AND short-circuit" `Quick test_short_circuit;
      prop_set_literal_matches_model;
    ]

(* list values: iteration, membership, aggregation, order-sensitivity *)
let test_lists () =
  let check_eval name src expected =
    Alcotest.check value name expected (eval src)
  in
  check_eval "list literal keeps duplicates and order"
    "[2, 1, 2]"
    (Value.List [ vi 2; vi 1; vi 2 ]);
  check_eval "count over list counts duplicates" "COUNT([2, 1, 2])" (vi 3);
  check_eval "membership in list" "1 IN [2, 1, 2]" (Value.Bool true);
  check_eval "iteration over list dedups into the result set"
    "SELECT v FROM [2, 1, 2] v" (vset [ vi 1; vi 2 ]);
  check_eval "lists compare by position"
    "[1, 2] = [2, 1]" (Value.Bool false);
  check_eval "sum over list" "SUM([1, 1, 1])" (vi 3);
  check_eval "quantifier over list" "EXISTS v IN [1, 2] (v = 2)"
    (Value.Bool true)

let suite =
  suite @ [ Alcotest.test_case "list semantics" `Quick test_lists ]
