(* Parser and pretty-printer tests: shapes, precedence, round trips. *)

open Helpers
module Ast = Lang.Ast

let parses_to src expected () =
  Alcotest.check expr src expected (parse src)

let test_precedence_arith =
  parses_to "1 + 2 * 3"
    Ast.(Binop (Add, vint 1, Binop (Mul, vint 2, vint 3)))

let test_precedence_bool =
  parses_to "a = 1 OR b = 2 AND c = 3"
    Ast.(
      Binop
        ( Or,
          Binop (Eq, Var "a", vint 1),
          Binop (And, Binop (Eq, Var "b", vint 2), Binop (Eq, Var "c", vint 3))
        ))

let test_not_in =
  parses_to "x NOT IN s" Ast.(Unop (Not, Binop (Mem, Var "x", Var "s")))

let test_set_ops =
  parses_to "a UNION b INTERSECT c"
    Ast.(Binop (Union, Var "a", Binop (Inter, Var "b", Var "c")))

let test_tuple_vs_comparison () =
  Alcotest.check expr "(a = 1) is a comparison"
    Ast.(Binop (Eq, Var "a", vint 1))
    (parse "(a = 1)");
  Alcotest.check expr "(a = 1,) is a singleton tuple"
    Ast.(TupleE [ ("a", vint 1) ])
    (parse "(a = 1,)");
  Alcotest.check expr "(a = 1, b = 2) is a tuple"
    Ast.(TupleE [ ("a", vint 1); ("b", vint 2) ])
    (parse "(a = 1, b = 2)")

let test_path =
  parses_to "x.address.city" (Ast.path "x" [ "address"; "city" ])

let test_quantifier =
  parses_to "EXISTS v IN z (v = x.a)"
    Ast.(Quant (Exists, "v", Var "z", Binop (Eq, Var "v", path "x" [ "a" ])))

let test_with_clause =
  parses_to "x.a IN z WITH z = {1, 2}"
    Ast.(
      Let
        ( "z",
          SetE [ vint 1; vint 2 ],
          Binop (Mem, path "x" [ "a" ], Var "z") ))

let test_sfw () =
  match parse "SELECT x FROM X x, d.emps e WHERE x.a = 1" with
  | Ast.Sfw { select = Ast.Var "x"; from; where = Some _ } ->
    Alcotest.(check (list string))
      "binders" [ "x"; "e" ] (List.map fst from)
  | _ -> Alcotest.fail "unexpected shape"

let test_comments_and_case () =
  Alcotest.check expr "keywords case-insensitive, comments skipped"
    (parse "SELECT x FROM X x")
    (parse "select x -- comment\nfrom X x")

let test_errors () =
  let fails src =
    match Lang.Parser.expr_result src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error: %s" src
  in
  fails "SELECT";
  fails "x +";
  fails "(a = 1, b)";
  fails "{1, 2";
  fails "x IN IN y";
  fails "EXISTS IN z (true)";
  fails "1 = 2 = 3" (* comparisons are non-associative *)

let test_string_escapes =
  parses_to {|"a\"b\n"|} (Ast.vstr "a\"b\n")

(* Round trip: parse → print → parse gives the same AST, on a corpus of
   tricky expressions. *)
let roundtrip_corpus =
  [
    "SELECT x FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d)";
    "SELECT (dn = d.name, es = (SELECT e FROM EMP e WHERE e.dept = d.name)) \
     FROM DEPT d";
    "x.a SUBSETEQ z AND NOT (x.b IN w) OR COUNT(z) = 0";
    "UNNEST(SELECT (SELECT (a = x.a,) FROM Y y WHERE x.b = y.d) FROM X x)";
    "FORALL w IN x.a (w IN z UNION {1, 2, 3})";
    "(a = 1, b = {(c = [1, 2],)}, d = -3.5)";
    "x.a + 2 * x.b - 1 <= MAX(z) - MIN(z)";
    "(SELECT x FROM X x WHERE x.a = 1) UNION (SELECT y FROM Y y)";
    "e IN z EXCEPT w INTERSECT v";
    "x.a IN z WITH z = (SELECT y.a FROM Y y) WITH w = {1}";
    "NOT NOT (a = 1)";
    "- x.a";
  ]

let test_roundtrip () =
  List.iter
    (fun src ->
      let e1 = parse src in
      let printed = Lang.Pretty.to_string e1 in
      let e2 =
        try parse printed
        with exn ->
          Alcotest.failf "reparse of %S failed: %s" printed
            (Printexc.to_string exn)
      in
      Alcotest.check expr (Printf.sprintf "%s ~ %s" src printed) e1 e2)
    roundtrip_corpus

let test_sfw_where_not_swallowed () =
  (* The printer must protect an SFW-with-WHERE in operand position. *)
  let e1 =
    Ast.(
      Binop
        ( And,
          Binop
            ( Mem,
              path "x" [ "a" ],
              Ast.sfw ~select:(path "y" [ "c" ])
                [ ("y", Var "Y") ]
                ~where:(Binop (Eq, path "x" [ "b" ], path "y" [ "d" ])) ),
          Binop (Eq, path "x" [ "e" ], vint 1) ))
  in
  let printed = Lang.Pretty.to_string e1 in
  Alcotest.check expr printed e1 (parse printed)

let suite =
  [
    Alcotest.test_case "arith precedence" `Quick test_precedence_arith;
    Alcotest.test_case "bool precedence" `Quick test_precedence_bool;
    Alcotest.test_case "NOT IN" `Quick test_not_in;
    Alcotest.test_case "set operator precedence" `Quick test_set_ops;
    Alcotest.test_case "tuple vs comparison" `Quick test_tuple_vs_comparison;
    Alcotest.test_case "paths" `Quick test_path;
    Alcotest.test_case "quantifiers" `Quick test_quantifier;
    Alcotest.test_case "WITH clause" `Quick test_with_clause;
    Alcotest.test_case "SFW with dependent FROM" `Quick test_sfw;
    Alcotest.test_case "case and comments" `Quick test_comments_and_case;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "print/parse round trips" `Quick test_roundtrip;
    Alcotest.test_case "WHERE not swallowed" `Quick test_sfw_where_not_swallowed;
  ]

(* property: parse ∘ print = identity on randomly generated expressions *)
let expr_gen =
  let open QCheck2.Gen in
  let ident = oneofl [ "x"; "y"; "zz"; "Tbl" ] in
  let label = oneofl [ "a"; "b"; "cc" ] in
  let cmp = oneofl Ast.[ Eq; Ne; Lt; Le; Gt; Ge; Mem; Subseteq; Supset ] in
  let arith = oneofl Ast.[ Add; Sub; Mul; Div; Mod ] in
  let setop = oneofl Ast.[ Union; Inter; Diff ] in
  let agg = oneofl Ast.[ Count; Sum; Min; Max; Avg ] in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map Ast.vint (int_range (-9) 9);
            map Ast.vstr (string_size ~gen:(char_range 'a' 'c') (int_range 0 2));
            map (fun b -> Ast.vbool b) bool;
            map (fun v -> Ast.Var v) ident;
          ]
      in
      if n <= 1 then leaf
      else
        let sub = self (n / 2) in
        oneof
          [
            leaf;
            map2 (fun e l -> Ast.Field (e, l)) sub label;
            map3 (fun op a b -> Ast.Binop (op, a, b)) cmp sub sub;
            map3 (fun op a b -> Ast.Binop (op, a, b)) arith sub sub;
            map3 (fun op a b -> Ast.Binop (op, a, b)) setop sub sub;
            map2 (fun a b -> Ast.Binop (Ast.And, a, b)) sub sub;
            map2 (fun a b -> Ast.Binop (Ast.Or, a, b)) sub sub;
            map (fun e -> Ast.Unop (Ast.Not, e)) sub;
            map (fun e -> Ast.Unop (Ast.Neg, e)) sub;
            map2 (fun a e -> Ast.Agg (a, e)) agg sub;
            map (fun e -> Ast.UnnestE e) sub;
            map (fun es -> Ast.SetE es) (list_size (int_range 0 3) sub);
            map (fun es -> Ast.ListE es) (list_size (int_range 0 3) sub);
            map2
              (fun l es -> Ast.TupleE [ (l, es) ])
              label sub;
            map3
              (fun v s p -> Ast.Quant (Ast.Exists, v, s, p))
              ident sub sub;
            map3
              (fun v s p -> Ast.Quant (Ast.Forall, v, s, p))
              ident sub sub;
            map3 (fun v d b -> Ast.Let (v, d, b)) ident sub sub;
            map3 (fun c a b -> Ast.If (c, a, b)) sub sub sub;
            map2 (fun tag e -> Ast.VariantE (tag, e)) label sub;
            map2 (fun e tag -> Ast.IsTag (e, tag)) sub label;
            map2 (fun e tag -> Ast.AsTag (e, tag)) sub label;
            map3
              (fun v op sel -> Ast.Sfw { select = sel; from = [ (v, op) ]; where = None })
              ident sub sub;
            map2
              (fun (v, op) (sel, w) ->
                Ast.Sfw { select = sel; from = [ (v, op) ]; where = Some w })
              (pair ident sub) (pair sub sub);
          ])

let prop_random_roundtrip =
  (* one canonicalization pass first: a generated [Const (-1)] reparses as
     [Neg (Const 1)] — textually identical, structurally not. After that,
     parse ∘ print must be the exact identity. *)
  Helpers.qcheck ~count:500 "parse ∘ print = id on random expressions"
    expr_gen
    (fun e0 ->
      match Lang.Parser.expr_result (Lang.Pretty.to_string e0) with
      | Error msg ->
        QCheck2.Test.fail_reportf "reparse failed on %S: %s"
          (Lang.Pretty.to_string e0) msg
      | Ok e -> (
        let printed = Lang.Pretty.to_string e in
        match Lang.Parser.expr_result printed with
        | Error msg ->
          QCheck2.Test.fail_reportf "reparse failed on %S: %s" printed msg
        | Ok e' ->
          Ast.equal e e'
          || QCheck2.Test.fail_reportf "roundtrip differs:@.%S@.reparsed %S"
               printed
               (Lang.Pretty.to_string e')))

let suite = suite @ [ prop_random_roundtrip ]

(* lexer edge cases *)
let test_lexer_edges () =
  Alcotest.check Helpers.expr "trailing-dot float"
    (Ast.Const (Cobj.Value.Float 2.0))
    (parse "2.");
  Alcotest.check Helpers.expr "field access on parenthesized int"
    (Ast.Field (Ast.vint 2, "x"))
    (parse "(2).x");
  Alcotest.check Helpers.expr "bang vs not-equal"
    (Ast.Binop (Ast.Ne, Ast.Var "a", Ast.VariantE ("t", Ast.vint 1)))
    (parse "a != t!1");
  Alcotest.check Helpers.expr "exponent float"
    (Ast.Const (Cobj.Value.Float 1e3))
    (parse "1e3");
  Alcotest.check Helpers.expr "comment to end of line"
    (parse "1 + 2")
    (parse "1 + -- neg\n2");
  (* '.' followed by an identifier is never a float *)
  Alcotest.check Helpers.expr "int dot ident"
    (Ast.Field (Ast.vint 2, "a"))
    (parse "2 .a")

let suite = suite @ [ Alcotest.test_case "lexer edges" `Quick test_lexer_edges ]
