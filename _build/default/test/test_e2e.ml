(* End-to-end tests on the paper's own queries: Q1 and Q2 over the Company
   schema (§3.2), the Table 1 nest join, and the §8 three-block pipeline. *)

open Helpers
module Value = Cobj.Value
module Plan = Algebra.Plan

let company = Workload.Gen.company Workload.Gen.default_company

(* Q1: departments with an employee living in the department's street+city.
   The subquery ranges over the set-valued attribute d.emps — the paper
   notes such queries are NOT flattened (the set is already materialized
   with the object); they must still execute correctly everywhere. *)
let q1 =
  "SELECT d FROM DEPT d WHERE (s = d.address.street, c = d.address.city) IN \
   (SELECT (s = e.address.street, c = e.address.city) FROM d.emps e)"

(* Q2: per-department names plus employees living in the department's city;
   nesting in the SELECT clause over a distinct table — the nest join case. *)
let q2 =
  "SELECT (dname = d.name, emps = (SELECT e FROM EMP e WHERE \
   e.address.city = d.address.city)) FROM DEPT d"

let test_q1_strategies () = strategies_agree ~catalog:company q1
let test_q2_strategies () = strategies_agree ~catalog:company q2

let test_q2_uses_nestjoin () =
  let q, _ = Lang.Types.typecheck_exn company (parse q2) in
  let opt = Core.Decorrelate.query (Core.Translate.query_exn company q) in
  let nestjoins =
    Plan.fold
      (fun n -> function Plan.Nestjoin _ -> n + 1 | _ -> n)
      0 opt.Plan.plan
  in
  Alcotest.check Alcotest.int "one nest join" 1 nestjoins

let test_q2_shape () =
  let v = run_strategy Core.Pipeline.Decorrelated company q2 in
  Alcotest.check Alcotest.int "one result tuple per department" 10
    (Value.set_card v);
  (* every tuple has dname and a set of employees all in the right city *)
  List.iter
    (fun t ->
      let emps = Value.field "emps" t in
      Alcotest.check Alcotest.bool "emps is a set" true
        (match emps with Value.Set _ -> true | _ -> false))
    (Value.elements v)

(* --- Table 1 ------------------------------------------------------------- *)

let test_table1 () =
  let cat = Workload.Gen.table1 () in
  (* nest equijoin of X and Y on the second attribute, identity function *)
  let nj =
    Plan.Nestjoin
      {
        pred = parse "x.d = y.b";
        func = parse "y";
        label = "s";
        left = Plan.Table { name = "X"; var = "x" };
        right = Plan.Table { name = "Y"; var = "y" };
      }
  in
  let rows = Algebra.Sem.rows cat Cobj.Env.empty nj in
  let expected =
    [
      ( (1, 1),
        Value.set
          [
            tup [ ("a", vi 1); ("b", vi 1) ];
            tup [ ("a", vi 2); ("b", vi 1) ];
          ] );
      ((2, 2), Value.set []);
      ((3, 3), Value.set [ tup [ ("a", vi 3); ("b", vi 3) ] ]);
    ]
  in
  Alcotest.check Alcotest.int "three result tuples" 3 (List.length rows);
  List.iter
    (fun ((e, d), s) ->
      let row =
        List.find
          (fun r ->
            Value.equal (Cobj.Env.find "x" r)
              (tup [ ("e", vi e); ("d", vi d) ]))
          rows
      in
      Alcotest.check value
        (Printf.sprintf "group of (%d, %d)" e d)
        s
        (Cobj.Env.find "s" row))
    expected

(* --- §8: the three-block linear query ----------------------------------- *)

let xyz =
  Workload.Gen.xyz
    {
      base =
        { Workload.Gen.default_xy with nx = 30; ny = 30; key_dom = 8;
          val_dom = 6; seed = 17 };
      nz = 30;
      z_key_dom = 8;
    }

(* Both correlation predicates require grouping (⊆): two nest joins. *)
let section8_grouping =
  "SELECT x FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b \
   AND y.c SUBSETEQ (SELECT z.c FROM Z z WHERE y.d = z.d))"

(* The ∈ / ∉ variant: semijoin and antijoin replace the nest joins. *)
let section8_flat =
  "SELECT x FROM X x WHERE EXISTS w IN x.a (w IN (SELECT y.a FROM Y y WHERE \
   x.b = y.b AND FORALL u IN y.c (u NOT IN (SELECT z.c FROM Z z WHERE y.d = \
   z.d))))"

let test_section8_agreement () =
  strategies_agree ~catalog:xyz section8_grouping;
  strategies_agree ~catalog:xyz section8_flat

let count_op q pred =
  Plan.fold (fun n node -> if pred node then n + 1 else n) 0 q.Plan.plan

let optimized src =
  let q, _ = Lang.Types.typecheck_exn xyz (parse src) in
  Core.Rewrite.query (Core.Decorrelate.query (Core.Translate.query_exn xyz q))

let test_section8_shapes () =
  let grouping = optimized section8_grouping in
  Alcotest.check Alcotest.int "two nest joins" 2
    (count_op grouping (function Plan.Nestjoin _ -> true | _ -> false));
  Alcotest.check Alcotest.int "no applies left" 0
    (count_op grouping (function Plan.Apply _ -> true | _ -> false));
  let flat = optimized section8_flat in
  Alcotest.check Alcotest.int "one semijoin" 1
    (count_op flat (function Plan.Semijoin _ -> true | _ -> false));
  Alcotest.check Alcotest.int "one antijoin" 1
    (count_op flat (function Plan.Antijoin _ -> true | _ -> false));
  Alcotest.check Alcotest.int "no nest joins" 0
    (count_op flat (function Plan.Nestjoin _ -> true | _ -> false))

(* Full pipeline through the CLI-facing API. *)
let test_pipeline_api () =
  let compiled =
    match
      Core.Pipeline.compile_string Core.Pipeline.Decorrelated xyz
        section8_grouping
    with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  let explain = Core.Pipeline.explain xyz compiled in
  Alcotest.check Alcotest.bool "explain mentions nestjoin" true
    (Astring.String.is_infix ~affix:"nestjoin" explain);
  let stats = Engine.Stats.create () in
  let v = Core.Pipeline.execute ~stats xyz compiled in
  Alcotest.check Alcotest.bool "produces a set" true
    (match v with Value.Set _ -> true | _ -> false);
  Alcotest.check Alcotest.bool "did some work" true
    (Engine.Stats.total_work stats > 0)

let test_error_paths () =
  (match Core.Pipeline.run Core.Pipeline.Decorrelated xyz "SELECT" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error not reported");
  match
    Core.Pipeline.run Core.Pipeline.Decorrelated xyz
      "SELECT q.nope FROM X q"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type error not reported"

let suite =
  [
    Alcotest.test_case "Q1 strategies agree" `Quick test_q1_strategies;
    Alcotest.test_case "Q2 strategies agree" `Quick test_q2_strategies;
    Alcotest.test_case "Q2 uses a nest join" `Quick test_q2_uses_nestjoin;
    Alcotest.test_case "Q2 result shape" `Quick test_q2_shape;
    Alcotest.test_case "Table 1 reproduction" `Quick test_table1;
    Alcotest.test_case "§8 strategies agree" `Quick test_section8_agreement;
    Alcotest.test_case "§8 plan shapes" `Quick test_section8_shapes;
    Alcotest.test_case "pipeline API" `Quick test_pipeline_api;
    Alcotest.test_case "error paths" `Quick test_error_paths;
  ]

(* --- the application-mix queries (shop schema) --------------------------- *)

let shop =
  Workload.Gen.shop
    { Workload.Gen.default_shop with ncustomers = 40; norders = 120 }

let shop_queries =
  [
    "SELECT c.name FROM CUSTOMERS c WHERE COUNT(SELECT o FROM ORDERS o \
     WHERE o.cust = c.id) = 0";
    "SELECT c.name FROM CUSTOMERS c WHERE FORALL o IN (SELECT o FROM ORDERS \
     o WHERE o.cust = c.id) (o.status = \"done\")";
    "SELECT c.name FROM CUSTOMERS c WHERE EXISTS o IN (SELECT o FROM ORDERS \
     o WHERE o.cust = c.id) (EXISTS i IN o.items (i.sku = \"sku0\"))";
    "SELECT (n = c.name, k = COUNT(SELECT o.id FROM ORDERS o WHERE o.cust = \
     c.id)) FROM CUSTOMERS c";
    "SELECT (n = c.name, t = SUM(UNNEST(SELECT (SELECT i.qty * i.price FROM \
     o.items i) FROM ORDERS o WHERE o.cust = c.id AND o.status = \"open\"))) \
     FROM CUSTOMERS c";
    "SELECT c.name FROM CUSTOMERS c WHERE c.vip = true AND COUNT(SELECT o \
     FROM ORDERS o WHERE o.cust = c.id) > 0 AND c.id NOT IN (SELECT o.cust \
     FROM ORDERS o WHERE o.status = \"open\")";
  ]

let test_shop_agreement () =
  List.iter (fun src -> strategies_agree ~catalog:shop src) shop_queries

(* The wrapper-peeling splitter: a subquery carrying an inner set-valued
   Apply above its correlated selection must still flatten. *)
let test_wrapped_subquery_flattens () =
  let src = List.nth shop_queries 4 in
  let q, _ = Lang.Types.typecheck_exn shop (parse src) in
  match Core.Pipeline.compile Core.Pipeline.Decorrelated shop q with
  | Error msg -> Alcotest.fail msg
  | Ok { logical = Some lq; _ } ->
    let correlated_applies =
      Plan.fold
        (fun n node ->
          match node with
          | Plan.Apply { subquery; input; _ } ->
            let outer =
              Lang.Ast.String_set.of_list (Plan.vars_of input)
            in
            if
              Lang.Ast.String_set.is_empty
                (Lang.Ast.String_set.inter
                   (Plan.query_free_vars subquery)
                   outer)
            then n
            else n + 1
          | _ -> n)
        0 lq.Plan.plan
    in
    (* the only correlated apply left is the set-valued-attribute one
       (o.items), which the paper says not to flatten *)
    Alcotest.check Alcotest.bool "at most one correlated apply" true
      (correlated_applies <= 1);
    let nestjoins =
      Plan.fold
        (fun n -> function Plan.Nestjoin _ -> n + 1 | _ -> n)
        0 lq.Plan.plan
    in
    Alcotest.check Alcotest.int "outer nesting became a nest join" 1 nestjoins
  | Ok { logical = None; _ } -> Alcotest.fail "no logical plan"

let suite =
  suite
  @ [
      Alcotest.test_case "shop queries agree" `Quick test_shop_agreement;
      Alcotest.test_case "wrapped subquery flattens" `Quick
        test_wrapped_subquery_flattens;
    ]
