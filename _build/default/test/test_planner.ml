(* Physical planner tests: implementation selection, forced modes, and the
   §6 build-side restriction at planning level. *)

open Helpers
module Plan = Algebra.Plan
module P = Engine.Physical
module Value = Cobj.Value

let catalog = Workload.Gen.xy Workload.Gen.default_xy
let x = Plan.Table { name = "X"; var = "x" }
let y = Plan.Table { name = "Y"; var = "y" }
let pred = parse "x.b = y.b"

let rec find_op pred plan =
  if pred plan then true
  else
    match plan with
    | P.Unit_row | P.Scan _ -> false
    | P.Filter { input; _ }
    | P.Unnest_op { input; _ }
    | P.Nest_op { input; _ }
    | P.Extend_op { input; _ }
    | P.Project_op { input; _ } ->
      find_op pred input
    | P.Nl_join { left; right; _ }
    | P.Hash_join { left; right; _ }
    | P.Merge_join { left; right; _ }
    | P.Nl_semijoin { left; right; _ }
    | P.Hash_semijoin { left; right; _ }
    | P.Merge_semijoin { left; right; _ }
    | P.Nl_outerjoin { left; right; _ }
    | P.Hash_outerjoin { left; right; _ }
    | P.Merge_outerjoin { left; right; _ }
    | P.Nl_nestjoin { left; right; _ }
    | P.Hash_nestjoin { left; right; _ }
    | P.Hash_nestjoin_left { left; right; _ }
    | P.Merge_nestjoin { left; right; _ } ->
      find_op pred left || find_op pred right
    | P.Apply_op { subquery; input; _ } ->
      find_op pred subquery.P.plan || find_op pred input
    | P.Index_join { left; _ }
    | P.Index_semijoin { left; _ }
    | P.Index_nestjoin { left; _ } ->
      find_op pred left
    | P.Union_op { left; right } -> find_op pred left || find_op pred right

let test_equi_join_hashes () =
  (* with indexes enabled the planner picks the index probe (same asymptotic
     cost, amortized build); with indexes off it must hash *)
  let physical =
    Core.Planner.plan catalog (Plan.Join { pred; left = x; right = y })
  in
  Alcotest.check Alcotest.bool "hash or index join selected" true
    (find_op
       (function P.Hash_join _ | P.Index_join _ -> true | _ -> false)
       physical);
  let no_idx =
    Core.Planner.plan
      ~options:{ Core.Planner.default_options with use_indexes = false }
      catalog
      (Plan.Join { pred; left = x; right = y })
  in
  Alcotest.check Alcotest.bool "hash join without indexes" true
    (find_op (function P.Hash_join _ -> true | _ -> false) no_idx)

let test_non_equi_join_nl () =
  let physical =
    Core.Planner.plan catalog
      (Plan.Join { pred = parse "x.b < y.b"; left = x; right = y })
  in
  Alcotest.check Alcotest.bool "nested loops for non-equi" true
    (find_op (function P.Nl_join _ -> true | _ -> false) physical)

let test_force_modes () =
  let logical = Plan.Join { pred; left = x; right = y } in
  let run options =
    Engine.Exec.rows catalog Cobj.Env.empty
      (Core.Planner.plan ~options catalog logical)
    |> List.sort_uniq Cobj.Env.compare
  in
  let auto = run Core.Planner.default_options in
  List.iter
    (fun force ->
      let got = run { Core.Planner.default_options with force } in
      Alcotest.check Alcotest.int "same cardinality under forced impl"
        (List.length auto) (List.length got);
      if not (List.for_all2 Cobj.Env.equal auto got) then
        Alcotest.fail "forced implementation changed the result")
    Core.Planner.[ Force_nl; Force_hash; Force_merge ]

let test_residual_extracted () =
  let logical =
    Plan.Join { pred = parse "x.b = y.b AND x.a < y.a"; left = x; right = y }
  in
  let physical = Core.Planner.plan catalog logical in
  Alcotest.check Alcotest.bool "equi key + residual" true
    (find_op
       (function
         | P.Hash_join { residual = Some _; _ }
         | P.Index_join { residual = Some _; _ } ->
           true
         | _ -> false)
       physical)

let test_multi_key_join () =
  let logical =
    Plan.Join { pred = parse "x.b = y.b AND x.a = y.a"; left = x; right = y }
  in
  let physical = Core.Planner.plan catalog logical in
  let uses_tuple_keys = function
    | P.Hash_join { lkey = Lang.Ast.TupleE _; rkey = Lang.Ast.TupleE _; _ } ->
      true
    | _ -> false
  in
  Alcotest.check Alcotest.bool "composite keys become tuples" true
    (find_op uses_tuple_keys physical);
  (* and the result matches the oracle *)
  let expected = Algebra.Sem.rows catalog Cobj.Env.empty logical in
  let got =
    Engine.Exec.rows catalog Cobj.Env.empty physical
    |> List.sort_uniq Cobj.Env.compare
  in
  Alcotest.check Alcotest.int "cardinality" (List.length expected)
    (List.length got)

let test_left_build_requires_key () =
  (* nest join keyed on the unique x.id: left-build becomes available *)
  let keyed =
    Plan.Nestjoin
      { pred = parse "y.b = x.id"; func = parse "x.a"; label = "g"; left = y;
        right = x }
  in
  let physical = Core.Planner.plan catalog keyed in
  ignore
    (find_op (function P.Hash_nestjoin_left _ -> true | _ -> false) physical);
  (* keyed on the non-unique x.b: left-build must NOT be chosen *)
  let unkeyed =
    Plan.Nestjoin
      { pred = parse "y.b = x.b"; func = parse "x.a"; label = "g"; left = y;
        right = x }
  in
  let physical = Core.Planner.plan catalog unkeyed in
  Alcotest.check Alcotest.bool "left-build rejected without key" false
    (find_op (function P.Hash_nestjoin_left _ -> true | _ -> false) physical)

let test_uncorrelated_apply_memoized () =
  let sub =
    { Plan.plan = Plan.Select { pred = parse "y.b = 3"; input = y };
      result = parse "y.a" }
  in
  let logical = Plan.Apply { var = "z"; subquery = sub; input = x } in
  let physical = Core.Planner.plan catalog logical in
  Alcotest.check Alcotest.bool "memo set" true
    (find_op (function P.Apply_op { memo; _ } -> memo | _ -> false) physical)

let test_correlated_apply_memo_option () =
  let sub =
    { Plan.plan = Plan.Select { pred = parse "y.b = x.b"; input = y };
      result = parse "y.a" }
  in
  let logical = Plan.Apply { var = "z"; subquery = sub; input = x } in
  let plain = Core.Planner.plan catalog logical in
  Alcotest.check Alcotest.bool "correlated not memoized by default" false
    (find_op (function P.Apply_op { memo; _ } -> memo | _ -> false) plain);
  let memoed =
    Core.Planner.plan
      ~options:{ Core.Planner.default_options with memo_applies = true }
      catalog logical
  in
  Alcotest.check Alcotest.bool "memo_applies forces memoization" true
    (find_op (function P.Apply_op { memo; _ } -> memo | _ -> false) memoed)

let test_index_operators_correct () =
  (* each index operator agrees with the oracle *)
  let check logical physical =
    let expected = Algebra.Sem.rows catalog Cobj.Env.empty logical in
    let got =
      Engine.Exec.rows catalog Cobj.Env.empty physical
      |> List.sort_uniq Cobj.Env.compare
    in
    if
      not
        (List.length expected = List.length got
        && List.for_all2 Cobj.Env.equal expected got)
    then Alcotest.fail "index operator diverged from oracle"
  in
  let sx = P.Scan { table = "X"; var = "x" } in
  check
    (Plan.Join { pred; left = x; right = y })
    (P.Index_join
       { lkey = parse "x.b"; table = "Y"; var = "y"; field = "b";
         residual = None; left = sx });
  check
    (Plan.Semijoin { pred; left = x; right = y })
    (P.Index_semijoin
       { lkey = parse "x.b"; table = "Y"; var = "y"; field = "b";
         residual = None; anti = false; left = sx });
  check
    (Plan.Antijoin { pred; left = x; right = y })
    (P.Index_semijoin
       { lkey = parse "x.b"; table = "Y"; var = "y"; field = "b";
         residual = None; anti = true; left = sx });
  check
    (Plan.Nestjoin
       { pred; func = parse "y.a"; label = "g"; left = x; right = y })
    (P.Index_nestjoin
       { lkey = parse "x.b"; table = "Y"; var = "y"; field = "b";
         residual = None; func = parse "y.a"; label = "g"; left = sx });
  check
    (Plan.Join { pred = parse "x.b = y.b AND x.a < y.a"; left = x; right = y })
    (P.Index_join
       { lkey = parse "x.b"; table = "Y"; var = "y"; field = "b";
         residual = Some (parse "x.a < y.a"); left = sx })

let test_cost_sanity () =
  (* hash beats nested loops on equal inputs at these sizes *)
  let sx = P.Scan { table = "X"; var = "x" } in
  let sy = P.Scan { table = "Y"; var = "y" } in
  let nl = P.Nl_join { pred; left = sx; right = sy } in
  let hash =
    P.Hash_join
      { lkey = parse "x.b"; rkey = parse "y.b"; residual = None; left = sx;
        right = sy }
  in
  Alcotest.check Alcotest.bool "cost(hash) < cost(nl)" true
    (Core.Cost.cost catalog hash < Core.Cost.cost catalog nl)

let suite =
  [
    Alcotest.test_case "equi join hashes" `Quick test_equi_join_hashes;
    Alcotest.test_case "non-equi join nested-loops" `Quick test_non_equi_join_nl;
    Alcotest.test_case "forced modes agree" `Quick test_force_modes;
    Alcotest.test_case "residual extraction" `Quick test_residual_extracted;
    Alcotest.test_case "composite keys" `Quick test_multi_key_join;
    Alcotest.test_case "left-build requires a key" `Quick
      test_left_build_requires_key;
    Alcotest.test_case "uncorrelated apply memoized" `Quick
      test_uncorrelated_apply_memoized;
    Alcotest.test_case "memo_applies option" `Quick
      test_correlated_apply_memo_option;
    Alcotest.test_case "index operators correct" `Quick
      test_index_operators_correct;
    Alcotest.test_case "cost model sanity" `Quick test_cost_sanity;
  ]
