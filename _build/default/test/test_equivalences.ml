(* Algebraic laws, verified on randomized catalogs.

   The paper lists a handful of nest-join equivalences and warns that the
   operator has "less pleasant algebraic properties"; this suite pins down
   which classical laws do hold in the implementation, on generated
   instances with danglings, duplicate keys, and empty operands. *)

open Helpers
module Plan = Algebra.Plan
module Sem = Algebra.Sem
module Env = Cobj.Env

let x = Plan.Table { name = "X"; var = "x" }
let y = Plan.Table { name = "Y"; var = "y" }
let pred = parse "x.b = y.b"

let catalog_of_seed seed =
  Workload.Gen.xy
    { Workload.Gen.default_xy with
      nx = 15 + (seed mod 7);
      ny = 15 + (seed mod 5);
      key_dom = 4 + (seed mod 4);
      dangling = float_of_int (seed mod 3) /. 4.0;
      seed }

let rows catalog p = Sem.rows catalog Env.empty p

let equal_rows a b =
  List.length a = List.length b && List.for_all2 Env.equal a b

let law name check =
  qcheck ~count:40 name
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed -> check (catalog_of_seed seed))

let law_semijoin_is_projected_join =
  law "X ⋉ Y = π_x (X ⋈ Y)" (fun cat ->
      equal_rows
        (rows cat (Plan.Semijoin { pred; left = x; right = y }))
        (rows cat
           (Plan.Project
              { vars = [ "x" ];
                input = Plan.Join { pred; left = x; right = y } })))

let law_semi_anti_partition =
  law "⋉ and ▷ partition X" (fun cat ->
      let semi = rows cat (Plan.Semijoin { pred; left = x; right = y }) in
      let anti = rows cat (Plan.Antijoin { pred; left = x; right = y }) in
      let all = rows cat x in
      let merged = List.sort_uniq Env.compare (semi @ anti) in
      equal_rows merged all
      && List.for_all (fun r -> not (List.exists (Env.equal r) anti)) semi)

let law_outerjoin_counts =
  law "|X ⟗ Y| = |X ⋈ Y| + |X ▷ Y|" (fun cat ->
      let oj = List.length (rows cat (Plan.Outerjoin { pred; left = x; right = y })) in
      let j = List.length (rows cat (Plan.Join { pred; left = x; right = y })) in
      let a = List.length (rows cat (Plan.Antijoin { pred; left = x; right = y })) in
      oj = j + a)

let nj =
  Plan.Nestjoin { pred; func = parse "y.a"; label = "g"; left = x; right = y }

let law_nestjoin_projects_to_left =
  law "π_x (X Δ Y) = X" (fun cat ->
      equal_rows
        (rows cat (Plan.Project { vars = [ "x" ]; input = nj }))
        (rows cat x))

let law_nestjoin_as_outerjoin =
  law "X Δ Y = ν*(X ⟗ Y) (§6)" (fun cat ->
      equal_rows (rows cat nj)
        (rows cat (Core.Kim.nestjoin_as_outerjoin nj)))

let law_nestjoin_nonempty_unnest_is_semijoin =
  (* unnesting the grouped attribute keeps exactly the matched left rows,
     each paired with its match values: projecting back gives the semijoin *)
  law "π_x (μ_g (X Δ Y)) = X ⋉ Y" (fun cat ->
      equal_rows
        (rows cat
           (Plan.Project
              { vars = [ "x" ];
                input = Plan.Unnest { expr = parse "g"; var = "u"; input = nj } }))
        (rows cat (Plan.Semijoin { pred; left = x; right = y })))

let law_union_laws =
  law "∪ is commutative, associative, idempotent" (fun cat ->
      let sel p = Plan.Select { pred = parse p; input = x } in
      let a = sel "x.b < 2" and b = sel "x.a > 2" and c = sel "x.id MOD 2 = 0" in
      let u l r = Plan.Union { left = l; right = r } in
      equal_rows (rows cat (u a b)) (rows cat (u b a))
      && equal_rows (rows cat (u (u a b) c)) (rows cat (u a (u b c)))
      && equal_rows (rows cat (u a a)) (rows cat a))

let law_select_distributes_over_union =
  law "σ_p (A ∪ B) = σ_p A ∪ σ_p B" (fun cat ->
      let a = Plan.Select { pred = parse "x.b < 3"; input = x } in
      let b = Plan.Select { pred = parse "x.a > 1"; input = x } in
      let p = parse "x.id MOD 2 = 0" in
      equal_rows
        (rows cat
           (Plan.Select { pred = p; input = Plan.Union { left = a; right = b } }))
        (rows cat
           (Plan.Union
              { left = Plan.Select { pred = p; input = a };
                right = Plan.Select { pred = p; input = b } })))

let law_select_fusion =
  law "σ_p (σ_q X) = σ_{q ∧ p} X" (fun cat ->
      let p = parse "x.a > 1" and q = parse "x.b < 3" in
      equal_rows
        (rows cat
           (Plan.Select { pred = p; input = Plan.Select { pred = q; input = x } }))
        (rows cat
           (Plan.Select { pred = Lang.Ast.Binop (Lang.Ast.And, q, p); input = x })))

let law_join_commutes_mod_projection =
  law "π(X ⋈ Y) = π(Y ⋈ X)" (fun cat ->
      let proj p = Plan.Project { vars = [ "x"; "y" ]; input = p } in
      equal_rows
        (rows cat (proj (Plan.Join { pred; left = x; right = y })))
        (rows cat (proj (Plan.Join { pred; left = y; right = x }))))

let law_semijoin_idempotent =
  law "(X ⋉ Y) ⋉ Y = X ⋉ Y" (fun cat ->
      let semi = Plan.Semijoin { pred; left = x; right = y } in
      equal_rows
        (rows cat (Plan.Semijoin { pred; left = semi; right = y }))
        (rows cat semi))

(* A negative result: merging a selection on the OUTER side into an
   antijoin's predicate is unsound — an x-row failing the filter then fails
   the predicate against every y, counts as unmatched, and is wrongly kept.
   (This is why [Core.Rewrite] only pushes such conjuncts below the left
   operand.) Exhibit a witness instance. *)
let antijoin_filter_merge_unsound () =
  let differs seed =
    let cat = catalog_of_seed seed in
    let sound =
      rows cat
        (Plan.Select
           { pred = parse "x.a > 2";
             input = Plan.Antijoin { pred; left = x; right = y } })
    in
    let merged =
      rows cat
        (Plan.Antijoin
           { pred = parse "x.b = y.b AND x.a > 2"; left = x; right = y })
    in
    not (equal_rows sound merged)
  in
  Alcotest.check Alcotest.bool
    "a witness instance distinguishes the two plans" true
    (List.exists differs (List.init 50 (fun i -> i)))

let suite =
  [
    law_semijoin_is_projected_join;
    law_semi_anti_partition;
    law_outerjoin_counts;
    law_nestjoin_projects_to_left;
    law_nestjoin_as_outerjoin;
    law_nestjoin_nonempty_unnest_is_semijoin;
    law_union_laws;
    law_select_distributes_over_union;
    law_select_fusion;
    law_join_commutes_mod_projection;
    law_semijoin_idempotent;
    Alcotest.test_case "antijoin filter-merge is unsound (witness)" `Quick
      antijoin_filter_merge_unsound;
  ]
