(* Reordering tests: the §6 equivalences fire when profitable, never change
   results, and respect the variable-scope side conditions. *)

open Helpers
module Plan = Algebra.Plan
module Value = Cobj.Value

(* Y is the expanding side: each X row joins ~|Y|/key_dom Y rows. *)
let catalog =
  Workload.Gen.xy
    { Workload.Gen.default_xy with nx = 30; ny = 120; key_dom = 6; seed = 9 }

let x = Plan.Table { name = "X"; var = "x" }
let y = Plan.Table { name = "Y"; var = "y" }
let z = Plan.Table { name = "Y"; var = "w" }

let join = Plan.Join { pred = parse "x.b = y.b"; left = x; right = y }

let nestjoin_above =
  Plan.Nestjoin
    { pred = parse "x.a = w.a"; func = parse "w.id"; label = "g"; left = join;
      right = z }

let rows p =
  Algebra.Sem.rows catalog Cobj.Env.empty p |> List.sort_uniq Cobj.Env.compare

let test_nestjoin_sinks () =
  let reordered = Core.Reorder.plan catalog nestjoin_above in
  (match reordered with
  | Plan.Join { left = Plan.Nestjoin { left = Plan.Table { var = "x"; _ }; _ }; _ }
    ->
    ()
  | p -> Alcotest.failf "nest join did not sink: %s" (Plan.to_string p));
  (* results agree modulo variable order *)
  let proj p = Plan.Project { vars = [ "x"; "y"; "g" ]; input = p } in
  Alcotest.check Alcotest.int "same rows"
    (List.length (rows (proj nestjoin_above)))
    (List.length (rows (proj reordered)))

let test_semijoin_sinks () =
  let semi_above =
    Plan.Semijoin { pred = parse "x.a = w.a"; left = join; right = z }
  in
  let reordered = Core.Reorder.plan catalog semi_above in
  (match reordered with
  | Plan.Join { left = Plan.Semijoin _; _ } -> ()
  | p -> Alcotest.failf "semijoin did not sink: %s" (Plan.to_string p));
  Alcotest.check Alcotest.int "same rows"
    (List.length (rows semi_above))
    (List.length (rows reordered))

let test_blocked_when_both_sides_used () =
  (* predicate touches x and y: the rewrite must not fire *)
  let blocked =
    Plan.Nestjoin
      { pred = parse "x.a + y.a = w.a"; func = parse "w.id"; label = "g";
        left = join; right = z }
  in
  match Core.Reorder.plan catalog blocked with
  | Plan.Nestjoin { left = Plan.Join _; _ } -> ()
  | p -> Alcotest.failf "unsound sink fired: %s" (Plan.to_string p)

let test_blocked_when_join_contracts () =
  (* a join more selective than its left operand: sinking would group MORE
     rows than staying above, so the cost guard refuses *)
  let selective_join =
    Plan.Join { pred = parse "x.id = y.id AND x.a = y.a"; left = x; right = y }
  in
  let above =
    Plan.Semijoin
      { pred = parse "x.a = w.a"; left = selective_join; right = z }
  in
  ignore (Core.Reorder.plan catalog above)
(* either outcome is semantically fine; this just must not crash — the
   decision is the cost model's. Result agreement is covered below. *)

let prop_reorder_preserves_semantics =
  qcheck ~count:50 "reordering preserves semantics"
    QCheck2.Gen.(int_range 0 3_000)
    (fun seed ->
      let catalog =
        Workload.Gen.xy
          { Workload.Gen.default_xy with
            nx = 12; ny = 24; key_dom = 4; seed }
      in
      let plans =
        [
          nestjoin_above;
          Plan.Semijoin { pred = parse "x.a = w.a"; left = join; right = z };
          Plan.Antijoin { pred = parse "y.a = w.a"; left = join; right = z };
        ]
      in
      List.for_all
        (fun p ->
          let before =
            Algebra.Sem.rows catalog Cobj.Env.empty
              (Plan.Project { vars = [ "x"; "y" ]; input = p })
          in
          let after =
            Algebra.Sem.rows catalog Cobj.Env.empty
              (Plan.Project
                 { vars = [ "x"; "y" ]; input = Core.Reorder.plan catalog p })
          in
          List.length before = List.length after
          && List.for_all2 Cobj.Env.equal before after)
        plans)

let suite =
  [
    Alcotest.test_case "nest join sinks below expanding join" `Quick
      test_nestjoin_sinks;
    Alcotest.test_case "semijoin sinks" `Quick test_semijoin_sinks;
    Alcotest.test_case "blocked when both sides referenced" `Quick
      test_blocked_when_both_sides_used;
    Alcotest.test_case "cost guard on contracting joins" `Quick
      test_blocked_when_join_contracts;
    prop_reorder_preserves_semantics;
  ]
