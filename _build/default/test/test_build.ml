(* Query-builder combinator tests: built ASTs behave identically to parsed
   concrete syntax under every strategy. *)

open Helpers
module B = Lang.Build
module Value = Cobj.Value

let cat = xy_catalog ()

let run_expr strategy e =
  match Core.Pipeline.compile strategy cat e with
  | Ok compiled -> Core.Pipeline.execute cat compiled
  | Error msg -> Alcotest.failf "compile failed: %s" msg

let equivalent name built src =
  let parsed = parse src in
  List.iter
    (fun strategy ->
      Alcotest.check value
        (Printf.sprintf "%s / %s" name (Core.Pipeline.strategy_name strategy))
        (run_expr strategy parsed) (run_expr strategy built))
    Core.Pipeline.[ Interp; Naive; Decorrelated ]

let test_simple_select () =
  let open B in
  let built =
    select1 ~from:(from (table "X"))
      (fun x -> x $. "a")
      ~where:(fun x -> (x $. "b") <: int 4)
  in
  equivalent "simple select" built "SELECT x.a FROM X x WHERE x.b < 4"

let test_nested_subquery () =
  let open B in
  let built =
    select1 ~from:(from (table "X"))
      (fun x -> x $. "a")
      ~where:(fun x ->
        (x $. "a")
        @: select1 ~from:(from (table "Y"))
             (fun y -> y $. "c")
             ~where:(fun y -> (x $. "b") =: (y $. "d")))
  in
  equivalent "correlated IN" built
    "SELECT x.a FROM X x WHERE x.a IN (SELECT y.c FROM Y y WHERE x.b = y.d)"

let test_quantifier_and_aggregate () =
  let open B in
  let built =
    select1 ~from:(from (table "X"))
      (fun x -> tuple [ ("a", x $. "a"); ("n", count (x $. "s")) ])
      ~where:(fun x -> exists (x $. "s") (fun v -> v >: (x $. "a")))
  in
  equivalent "quantifier + aggregate" built
    "SELECT (a = x.a, n = COUNT(x.s)) FROM X x WHERE EXISTS v IN x.s (v > \
     x.a)"

let test_two_tables () =
  let open B in
  let built =
    select2
      ~from:(from (table "X"), from (table "Y"))
      (fun x y -> tuple [ ("a", x $. "a"); ("c", y $. "c") ])
      ~where:(fun x y -> (x $. "b") =: (y $. "d"))
  in
  equivalent "two tables" built
    "SELECT (a = x.a, c = y.c) FROM X x, Y y WHERE x.b = y.d"

let test_no_capture () =
  (* an embedded expression using variable [v1] must not be captured by a
     generated binder even with a colliding hint *)
  let open B in
  let embedded = Lang.Parser.expr "v1" in
  let built =
    let_ ~hint:"v" (set [ int 1 ])
      (fun w -> exists ~hint:"v" (set [ embedded ]) (fun u -> u =: w))
  in
  (* evaluate with v1 bound externally: ∃u ∈ {v1} (u = {1}) *)
  let env = Cobj.Env.bind "v1" (vset [ vi 1 ]) Cobj.Env.empty in
  Alcotest.check Helpers.value "embedded free variable survives"
    (Value.Bool true)
    (Lang.Interp.eval cat env built)

let test_with_clause () =
  let open B in
  let built =
    select1 ~from:(from (table "X"))
      (fun x -> x $. "a")
      ~where:(fun x -> let_ (set [ int 1; int 2 ]) (fun z -> (x $. "a") @: z))
  in
  equivalent "with clause" built
    "SELECT x.a FROM X x WHERE x.a IN z WITH z = {1, 2}"

let test_set_operators () =
  let open B in
  let built =
    select1 ~from:(from (table "X"))
      (fun x -> x $. "a")
      ~where:(fun x ->
        subseteq (x $. "s") (union (set [ int 1; int 2 ]) (set [ int 3 ])))
  in
  equivalent "set operators" built
    "SELECT x.a FROM X x WHERE x.s SUBSETEQ ({1, 2} UNION {3})"

let suite =
  [
    Alcotest.test_case "simple select" `Quick test_simple_select;
    Alcotest.test_case "correlated subquery" `Quick test_nested_subquery;
    Alcotest.test_case "quantifier + aggregate" `Quick
      test_quantifier_and_aggregate;
    Alcotest.test_case "two tables" `Quick test_two_tables;
    Alcotest.test_case "no capture" `Quick test_no_capture;
    Alcotest.test_case "WITH clause" `Quick test_with_clause;
    Alcotest.test_case "set operators" `Quick test_set_operators;
  ]
