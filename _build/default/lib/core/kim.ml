module Ast = Lang.Ast
module Plan = Algebra.Plan
module Sset = Ast.String_set

let split_conjuncts pred =
  let rec go acc = function
    | Ast.Binop (Ast.And, a, b) -> go (go acc b) a
    | p -> p :: acc
  in
  match pred with
  | Ast.Const (Cobj.Value.Bool true) -> []
  | _ -> go [] pred

let equi_split ~left_vars ~right_vars pred =
  let lset = Sset.of_list left_vars and rset = Sset.of_list right_vars in
  let side e =
    let fv = Ast.free_vars e in
    let uses_l = not (Sset.is_empty (Sset.inter fv lset)) in
    let uses_r = not (Sset.is_empty (Sset.inter fv rset)) in
    match uses_l, uses_r with
    | true, false -> `Left
    | false, true -> `Right
    | false, false -> `Neither
    | true, true -> `Both
  in
  let classify_conjunct c =
    match c with
    | Ast.Binop (Ast.Eq, a, b) -> begin
      match side a, side b with
      | `Left, (`Right | `Neither) | `Neither, `Right -> `Equi (a, b)
      | `Right, (`Left | `Neither) | `Neither, `Left -> `Equi (b, a)
      | _, _ -> `Residual
    end
    | _ -> `Residual
  in
  let pairs, residual =
    List.fold_left
      (fun (pairs, residual) c ->
        match classify_conjunct c with
        | `Equi (l, r) -> ((l, r) :: pairs, residual)
        | `Residual -> (pairs, c :: residual))
      ([], []) (split_conjuncts pred)
  in
  match pairs with
  | [] -> None
  | _ :: _ -> Some (List.rev pairs, List.rev residual)

(* Recognize the two-block pattern [Select (pred) ∘ Apply (z = sub) over X]
   and split the subquery, reusing the decorrelator's machinery. *)
let two_block_pattern query =
  match query.Plan.plan with
  | Plan.Select { pred; input = Plan.Apply { var = z; subquery; input } }
    when Ast.occurs_free z pred -> (
    let outer = Sset.of_list (Plan.vars_of input) in
    match Decorrelate.split_subquery_for_baselines outer subquery with
    | Some (base, corr, result) -> Ok (pred, z, input, base, corr, result)
    | None -> Error "subquery does not split into base + correlation")
  | _ -> Error "not a two-block Select-over-Apply query"

let fresh_names used n base =
  let rec go used acc i =
    if i = 0 then (used, List.rev acc)
    else begin
      let v = Ast.fresh used base in
      go (Sset.add v used) (v :: acc) (i - 1)
    end
  in
  go used [] n

let used_of query =
  Sset.union
    (Sset.of_list
       (Plan.fold
          (fun acc node ->
            match node with
            | Plan.Table { var; _ }
            | Plan.Unnest { var; _ }
            | Plan.Extend { var; _ }
            | Plan.Apply { var; _ } ->
              var :: acc
            | Plan.Nestjoin { label; _ } | Plan.Nest { label; _ } ->
              label :: acc
            | Plan.Unit | Plan.Select _ | Plan.Join _ | Plan.Semijoin _
            | Plan.Antijoin _ | Plan.Outerjoin _ | Plan.Project _
            | Plan.Union _ ->
              acc)
          [] query.Plan.plan))
    (Classify.all_vars_of query.Plan.result)

let kim query =
  match two_block_pattern query with
  | Error _ as e -> e
  | Ok (pred, z, x_plan, base, corr, result) -> (
    let left_vars = Plan.vars_of x_plan in
    let right_vars = Plan.vars_of base in
    match equi_split ~left_vars ~right_vars corr with
    | None -> Error "correlation predicate is not an equi-join"
    | Some (pairs, residual) ->
      if residual <> [] then
        Error "correlation predicate has non-equi conjuncts"
      else begin
        (* T = ν_{keys}(Y): extend Y with the key value(s), nest the G
           values per key; then join X with T on its key expressions. *)
        let used = used_of query in
        let used, keys = fresh_names used (List.length pairs) "k" in
        ignore used;
        let extended =
          List.fold_left2
            (fun plan k (_, re) -> Plan.Extend { var = k; expr = re; input = plan })
            base keys pairs
        in
        let grouped =
          Plan.Nest
            { by = keys; label = z; func = result; nulls = []; input = extended }
        in
        let join_pred =
          Ast.conj
            (List.map2
               (fun k (le, _) -> Ast.Binop (Ast.Eq, le, Ast.Var k))
               keys pairs)
        in
        let plan =
          Plan.Select
            {
              pred;
              input = Plan.Join { pred = join_pred; left = x_plan; right = grouped };
            }
        in
        Ok { query with Plan.plan }
      end)

(* Kim's variant (2): join, then group by the outer variables (the paper's
   GROUP BY form). The join drops dangling X rows before grouping can see
   them — the bug again, by a different route. *)
let kim_join_first query =
  match two_block_pattern query with
  | Error _ as e -> e
  | Ok (pred, z, x_plan, base, corr, result) ->
    let left_vars = Plan.vars_of x_plan in
    let plan =
      Plan.Select
        {
          pred;
          input =
            Plan.Nest
              {
                by = left_vars;
                label = z;
                func = result;
                nulls = [];
                input = Plan.Join { pred = corr; left = x_plan; right = base };
              };
        }
    in
    Ok { query with Plan.plan }

(* Shared between [kim] and [muralikrishna]: the grouped inner relation
   ν_keys(Y) and the equi-join predicate against it. *)
let grouped_inner query base corr ~left_vars ~right_vars =
  match equi_split ~left_vars ~right_vars corr with
  | None -> Error "correlation predicate is not an equi-join"
  | Some (pairs, residual) ->
    if residual <> [] then Error "correlation predicate has non-equi conjuncts"
    else begin
      let used = used_of query in
      let _, keys = fresh_names used (List.length pairs) "k" in
      let extended =
        List.fold_left2
          (fun plan k (_, re) -> Plan.Extend { var = k; expr = re; input = plan })
          base keys pairs
      in
      Ok (keys, pairs, extended)
    end

let muralikrishna query =
  match two_block_pattern query with
  | Error _ as e -> e
  | Ok (pred, z, x_plan, base, corr, result) -> (
    let left_vars = Plan.vars_of x_plan in
    let right_vars = Plan.vars_of base in
    match grouped_inner query base corr ~left_vars ~right_vars with
    | Error _ as e -> e
    | Ok (keys, pairs, extended) ->
      let grouped =
        Plan.Nest
          { by = keys; label = z; func = result; nulls = []; input = extended }
      in
      let join_pred =
        Ast.conj
          (List.map2
             (fun k (le, _) -> Ast.Binop (Ast.Eq, le, Ast.Var k))
             keys pairs)
      in
      (* matched branch: Kim's plan, projected back to the outer variables *)
      let matched =
        Plan.Project
          {
            vars = left_vars;
            input =
              Plan.Select
                {
                  pred;
                  input =
                    Plan.Join { pred = join_pred; left = x_plan; right = grouped };
                };
          }
      in
      (* dangling branch: the antijoin predicate P[z := ∅] *)
      let dangling =
        Plan.Select
          {
            pred = Ast.subst z (Ast.Const (Cobj.Value.Set [])) pred;
            input =
              Plan.Antijoin
                { pred = join_pred; left = x_plan; right = grouped };
          }
      in
      Ok { query with Plan.plan = Plan.Union { left = matched; right = dangling } })

let ganski_wong query =
  match two_block_pattern query with
  | Error _ as e -> e
  | Ok (pred, z, x_plan, base, corr, result) ->
    let left_vars = Plan.vars_of x_plan in
    let right_vars = Plan.vars_of base in
    let plan =
      Plan.Select
        {
          pred;
          input =
            Plan.Nest
              {
                by = left_vars;
                label = z;
                func = result;
                nulls = right_vars;
                input =
                  Plan.Outerjoin { pred = corr; left = x_plan; right = base };
              };
        }
    in
    Ok { query with Plan.plan }

let rec nestjoin_as_outerjoin plan =
  let plan = Plan.map_children nestjoin_as_outerjoin plan in
  match plan with
  | Plan.Nestjoin { pred; func; label; left; right } ->
    Plan.Nest
      {
        by = Plan.vars_of left;
        label;
        func;
        nulls = Plan.vars_of right;
        input = Plan.Outerjoin { pred; left; right };
      }
  | _ -> plan
