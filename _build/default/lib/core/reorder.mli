(** Cost-guided join reordering using the paper's §6 equivalences.

    The paper lists (and warns about the scarcity of) algebraic laws for the
    nest join; the two usable ones let a nest join commute with a regular
    join when its predicate and function touch only one join operand:

    - [(A ⋈_J B) Δ_{P,G} Z ≡ (A Δ_{P,G} Z) ⋈_J B]  when [P, G] touch only
      [A] (and [Z]) — the paper's second listed equivalence;
    - [(A ⋈_J B) Δ_{P,G} Z ≡ A ⋈_J (B Δ_{P,G} Z)]  when they touch only
      [B] — the third.

    The same shape is sound for semijoins and antijoins. Sinking the
    grouped/filtered operator below the join is applied when the cost model
    estimates the join operand to be smaller than the join output (an
    expanding join) — grouping fewer rows, building smaller tables. Both
    equivalences are independently verified on random instances in
    [test/test_algebra.ml] and [test/test_reorder.ml]. *)

val plan : Cobj.Catalog.t -> Algebra.Plan.plan -> Algebra.Plan.plan
val query : Cobj.Catalog.t -> Algebra.Plan.query -> Algebra.Plan.query
