(** Physical planning: implementation selection for logical operators.

    For every join-like node the planner tries to split the predicate into
    equi-key pairs ({!Kim.equi_split}); when it succeeds, hash- and
    sort-merge implementations compete with nested loops on {!Cost.cost},
    otherwise nested loops is the only legal choice. Per the paper's §6
    restriction, the hash nest join builds on the {b right} operand; the
    left-build streaming variant is selected only when the right key is a
    declared key of a right-side base table ([Table.key]).

    Uncorrelated Apply subqueries are always memoized (they are constants of
    the ambient environment); correlated ones keep naive re-evaluation unless
    [memo_applies] is set (ablation E6). *)

type impl_force =
  | Auto            (** cost-based choice *)
  | Force_nl
  | Force_hash
  | Force_merge

type options = {
  force : impl_force;
  memo_applies : bool;  (** memoize correlated applies too *)
  use_indexes : bool;
      (** allow index-join variants when the right operand is a bare base
          table and the key is a plain field (default true; [force] modes
          other than [Auto] exclude them) *)
}

val default_options : options

val plan :
  ?options:options -> Cobj.Catalog.t -> Algebra.Plan.plan -> Engine.Physical.t

val query :
  ?options:options ->
  Cobj.Catalog.t ->
  Algebra.Plan.query ->
  Engine.Physical.query
