lib/core/kim.mli: Algebra Lang
