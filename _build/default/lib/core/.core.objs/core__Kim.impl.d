lib/core/kim.ml: Algebra Classify Cobj Decorrelate Lang List
