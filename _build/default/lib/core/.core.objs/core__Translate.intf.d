lib/core/translate.mli: Algebra Cobj Lang
