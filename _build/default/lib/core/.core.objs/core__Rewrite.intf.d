lib/core/rewrite.mli: Algebra Lang
