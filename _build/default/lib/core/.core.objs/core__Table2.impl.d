lib/core/table2.ml: Classify Lang
