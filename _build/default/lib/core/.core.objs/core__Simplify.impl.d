lib/core/simplify.ml: Algebra Cobj Lang List Option String
