lib/core/decorrelate.mli: Algebra Lang
