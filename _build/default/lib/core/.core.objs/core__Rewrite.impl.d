lib/core/rewrite.ml: Algebra Cobj Lang List
