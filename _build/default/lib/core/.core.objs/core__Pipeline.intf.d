lib/core/pipeline.mli: Algebra Cobj Engine Lang Planner
