lib/core/pipeline.ml: Algebra Buffer Cobj Cost Decorrelate Engine Fmt Format Kim Lang Logs Option Planner Reorder Result Rewrite Simplify Translate
