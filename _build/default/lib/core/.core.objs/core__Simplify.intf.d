lib/core/simplify.mli: Algebra Cobj Lang
