lib/core/cost.ml: Algebra Cobj Engine Float Lang String
