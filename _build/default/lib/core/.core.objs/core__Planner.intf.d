lib/core/planner.mli: Algebra Cobj Engine
