lib/core/classify.mli: Fmt Lang
