lib/core/translate.ml: Algebra Classify Cobj Fmt Lang List Option
