lib/core/table2.mli: Classify Lang
