lib/core/planner.ml: Algebra Cobj Cost Engine Kim Lang List Printf String
