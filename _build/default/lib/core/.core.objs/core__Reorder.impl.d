lib/core/reorder.ml: Algebra Cost Lang Option
