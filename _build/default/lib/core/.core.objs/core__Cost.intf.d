lib/core/cost.mli: Algebra Cobj Engine
