lib/core/classify.ml: Cobj Fmt Format Lang List Option String
