lib/core/reorder.mli: Algebra Cobj
