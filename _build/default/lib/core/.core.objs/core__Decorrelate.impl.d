lib/core/decorrelate.ml: Algebra Classify Cobj Fun Lang List String
