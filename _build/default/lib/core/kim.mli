(** Relational unnesting baselines: Kim's algorithm and the Ganski–Wong
    outerjoin fix — kept to demonstrate the COUNT bug (and its complex-object
    generalizations, e.g. the SUBSETEQ bug of §4) and to benchmark against
    the nest join.

    Both operate on the naive two-block pattern
    [Select (P) ∘ Apply (z = σ_Q(Y) via G) over X] produced by [Translate]:

    - {!kim} groups the inner operand first (ν over the join-key value) and
      then joins: [σ_P (X ⋈ ν(Y))]. Dangling [X]-rows — for which the
      original query binds [z = ∅] — are lost in the join: the transformation
      is {b deliberately incorrect} on them, reproducing Kim's bug.
    - {!ganski_wong} replaces the join with a left outerjoin followed by the
      NULL-aware nest ν*, which preserves dangling rows: [σ_P (ν*(X ⟗_Q Y))].
      This is also exactly the paper's §6 algebraic characterization of the
      nest join, [X Δ Y = ν*(X ⟗ Y)], so {!nestjoin_as_outerjoin} reuses it
      to rewrite arbitrary Nestjoin nodes for the equivalence tests.

    Kim's grouping step needs an equi-correlation (it groups [Y] by the
    join-key value); both functions return [Error] when the correlation
    predicate does not split into [e_x = e_y] conjuncts. *)

val kim : Algebra.Plan.query -> (Algebra.Plan.query, string) result
(** Kim's transformation (1): group the inner operand first, then join. *)

val kim_join_first : Algebra.Plan.query -> (Algebra.Plan.query, string) result
(** Kim's transformation (2) (the paper's §2): join first, then group by the
    outer tuple — [σ_P (ν_X (X ⋈_Q Y))], the GROUP BY … HAVING form. Equally
    {b wrong} on dangling tuples: they vanish in the join before grouping.
    (Only valid when the outer relation has no duplicates — trivially true
    here, relations are sets.) *)

val ganski_wong : Algebra.Plan.query -> (Algebra.Plan.query, string) result

val muralikrishna : Algebra.Plan.query -> (Algebra.Plan.query, string) result
(** The third relational fix the paper's §2 surveys (Muralikrishna, VLDB
    1992): keep Kim's group-first plan but add an {e antijoin predicate} for
    the dangling tuples — here expressed as the union of the matched branch
    [σ_P (X ⋈ ν(Y))] and the dangling branch [σ_{P[z := ∅]} (X ▷ ν(Y))].
    Correct on dangling rows, at the price of evaluating the grouped inner
    relation twice. Same applicability conditions as {!kim}. *)

val nestjoin_as_outerjoin : Algebra.Plan.plan -> Algebra.Plan.plan
(** Rewrite every [Nestjoin] node into [ν* ∘ Outerjoin] (§6). The rewritten
    plan computes the same rows — verified by the test suite. *)

val equi_split :
  left_vars:string list ->
  right_vars:string list ->
  Lang.Ast.expr ->
  ((Lang.Ast.expr * Lang.Ast.expr) list * Lang.Ast.expr list) option
(** Split a predicate into equi-conjunct pairs [(e_left, e_right)] — with
    [e_left] over the left variables and [e_right] over the right variables —
    plus residual conjuncts. [None] if no equi-conjunct exists. Shared with
    the physical planner. *)
