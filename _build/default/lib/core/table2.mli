(** The paper's Table 2 ("Rewriting TM predicates") as an executable catalog.

    Each row pairs a predicate between query blocks — written over the outer
    variable [x] and the subquery result [z] — with the classification the
    paper assigns (or that follows from its Theorem 1). The OCR of the
    original table is partially garbled; the row set below is reconstructed
    from the prose semantics (§4.1, §7) and extended with derived forms,
    every one of which is verified against the reference interpreter by the
    test suite. Rows marked [extension] go beyond the paper (MIN/MAX bounds,
    connective absorption, set-operator unfolding).

    [x] is a tuple with [a : P INT] (set-valued), [b : INT] (scalar) — rows
    use whichever field has the right type. *)

type expected =
  | Semijoin  (** rewritable to ∃v ∈ z (P') *)
  | Antijoin  (** rewritable to ¬∃v ∈ z (P') *)
  | Grouping  (** whole subquery result required — nest join *)

type row = {
  name : string;
  source : string;      (** concrete syntax, parseable by [Lang.Parser] *)
  expected : expected;
  in_paper : bool;      (** appears in (our reconstruction of) Table 2 *)
}

val rows : row list

val predicate : row -> Lang.Ast.expr
(** Parsed [source]. *)

val kind : Classify.verdict -> expected
(** Collapse a classifier verdict to the Table 2 column. *)

val expected_to_string : expected -> string
