module Ast = Lang.Ast

type verdict =
  | Exists of { var : string; body : Ast.expr }
  | Not_exists of { var : string; body : Ast.expr }
  | Needs_grouping of string

let negate = function
  | Exists { var; body } -> Not_exists { var; body }
  | Not_exists { var; body } -> Exists { var; body }
  | Needs_grouping _ as v -> v

(* All identifiers occurring in an expression, free or bound — used to pick
   capture-proof fresh variables. *)
let rec all_vars acc e =
  match e with
  | Ast.Const _ | Ast.TableRef _ -> acc
  | Ast.Var x -> Ast.String_set.add x acc
  | Ast.Field (e1, _) | Ast.Unop (_, e1) | Ast.Agg (_, e1) | Ast.UnnestE e1
  | Ast.VariantE (_, e1) | Ast.IsTag (e1, _) | Ast.AsTag (e1, _) ->
    all_vars acc e1
  | Ast.If (c, a, b) -> all_vars (all_vars (all_vars acc c) a) b
  | Ast.TupleE fields ->
    List.fold_left (fun acc (_, e1) -> all_vars acc e1) acc fields
  | Ast.SetE es | Ast.ListE es -> List.fold_left all_vars acc es
  | Ast.Binop (_, a, b) -> all_vars (all_vars acc a) b
  | Ast.Quant (_, v, s, p) ->
    all_vars (all_vars (Ast.String_set.add v acc) s) p
  | Ast.Let (v, d, b) -> all_vars (all_vars (Ast.String_set.add v acc) d) b
  | Ast.Sfw { select; from; where } ->
    let acc = all_vars acc select in
    let acc =
      List.fold_left
        (fun acc (v, op) -> all_vars (Ast.String_set.add v acc) op)
        acc from
    in
    Option.fold ~none:acc ~some:(all_vars acc) where

let flip_cmp = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | (Ast.Eq | Ast.Ne) as op -> op
  | op -> op

let is_empty_set = function
  | Ast.SetE [] | Ast.Const (Cobj.Value.Set []) -> true
  | _ -> false

let vtrue = Ast.vbool true

let classify ~z p =
  let used = ref (Ast.String_set.add z (all_vars Ast.String_set.empty p)) in
  let fresh () =
    let v = Ast.fresh !used "v" in
    used := Ast.String_set.add v !used;
    v
  in
  let free e = Ast.occurs_free z e in
  let is_z e = match e with Ast.Var x -> String.equal x z | _ -> false in
  let ng fmt = Format.kasprintf (fun s -> Needs_grouping s) fmt in
  let enot e = Ast.Unop (Ast.Not, e) in
  let emem a b = Ast.Binop (Ast.Mem, a, b) in

  (* [S = ∅] for a set expression [S] containing z, unfolded to a predicate
     classified recursively. Returns the predicate, or None if the shape is
     out of scope. *)
  let rec emptiness s =
    if is_z s then Some (Not_exists { var = fresh (); body = vtrue })
    else
      match s with
      | Ast.Binop (Ast.Inter, a, b) when is_z a && not (free b) ->
        (* z ∩ b = ∅  ≡  ¬∃v ∈ z (v ∈ b) *)
        let v = fresh () in
        Some (Not_exists { var = v; body = emem (Ast.Var v) b })
      | Ast.Binop (Ast.Inter, a, b) when is_z b && not (free a) ->
        let v = fresh () in
        Some (Not_exists { var = v; body = emem (Ast.Var v) a })
      | Ast.Binop (Ast.Union, a, b) ->
        (* a ∪ b = ∅  ≡  a = ∅ ∧ b = ∅ *)
        Some
          (go
             (Ast.Binop
                ( Ast.And,
                  Ast.Binop (Ast.Eq, a, Ast.SetE []),
                  Ast.Binop (Ast.Eq, b, Ast.SetE []) )))
      | Ast.Binop (Ast.Diff, a, b) when is_z a && not (free b) ->
        (* z ∖ b = ∅  ≡  z ⊆ b  ≡  ¬∃v ∈ z (v ∉ b) *)
        let v = fresh () in
        Some (Not_exists { var = v; body = enot (emem (Ast.Var v) b) })
      | _ -> None

  and go p =
    if not (free p) then ng "z not free in predicate"
    else
      match p with
      | Ast.Unop (Ast.Not, p1) -> negate (go p1)
      | Ast.Let (v, def, body) -> go (Ast.subst v def body)
      (* --- membership ------------------------------------------------ *)
      | Ast.Binop (Ast.Mem, e, s) when free s && not (free e) ->
        membership e s
      | Ast.Binop (Ast.Mem, _, _) -> ng "z on the element side of ∈"
      (* --- quantifiers ------------------------------------------------ *)
      | Ast.Quant (Ast.Forall, v, s, body) ->
        (* ∀v ∈ s (B) ≡ ¬∃v ∈ s (¬B) *)
        negate (go (Ast.Quant (Ast.Exists, v, s, enot body)))
      | Ast.Quant (Ast.Exists, v, s, body) when is_z s ->
        if free body then ng "z occurs both as range and in body of ∃"
        else Exists { var = v; body }
      | Ast.Quant (Ast.Exists, v, s, body) when free s ->
        (* unfold set operators in the range *)
        begin
          match s with
          | Ast.Binop (Ast.Inter, a, b) ->
            go
              (Ast.Quant
                 ( Ast.Exists,
                   v,
                   a,
                   Ast.Binop (Ast.And, body, emem (Ast.Var v) b) ))
          | Ast.Binop (Ast.Diff, a, b) ->
            go
              (Ast.Quant
                 ( Ast.Exists,
                   v,
                   a,
                   Ast.Binop (Ast.And, body, enot (emem (Ast.Var v) b)) ))
          | Ast.Binop (Ast.Union, a, b) ->
            go
              (Ast.Binop
                 ( Ast.Or,
                   Ast.Quant (Ast.Exists, v, a, body),
                   Ast.Quant (Ast.Exists, v, b, body) ))
          | _ -> ng "quantifier over a complex z-expression"
        end
      | Ast.Quant (Ast.Exists, w, s, body) ->
        (* z occurs in the body only; if the body is an ∃-over-z, the
           quantifiers commute: ∃w ∈ s ∃v ∈ z (B) ≡ ∃v ∈ z ∃w ∈ s (B). *)
        begin
          match go body with
          | Exists { var; body = inner } ->
            Exists { var; body = Ast.Quant (Ast.Exists, w, s, inner) }
          | Not_exists _ -> ng "¬∃ under an existential quantifier"
          | Needs_grouping _ as v -> v
        end
      (* --- boolean connectives ---------------------------------------- *)
      | Ast.Binop (Ast.And, p1, p2) when free p1 && free p2 ->
        ng "z occurs in both conjuncts"
      | Ast.Binop (Ast.And, p1, p2) ->
        let zpart, rest = if free p1 then (p1, p2) else (p2, p1) in
        begin
          match go zpart with
          | Exists { var; body } ->
            Exists { var; body = Ast.Binop (Ast.And, body, rest) }
          | Not_exists _ -> ng "¬∃ conjoined with a z-free predicate"
          | Needs_grouping _ as v -> v
        end
      | Ast.Binop (Ast.Or, p1, p2) when free p1 && free p2 ->
        ng "z occurs in both disjuncts"
      | Ast.Binop (Ast.Or, p1, p2) ->
        let zpart, rest = if free p1 then (p1, p2) else (p2, p1) in
        begin
          match go zpart with
          | Not_exists { var; body } ->
            Not_exists { var; body = Ast.Binop (Ast.And, body, enot rest) }
          | Exists _ -> ng "∃ disjoined with a z-free predicate"
          | Needs_grouping _ as v -> v
        end
      (* --- emptiness -------------------------------------------------- *)
      | Ast.Binop (Ast.Eq, s, e) when is_empty_set e && free s -> begin
        match emptiness s with
        | Some v -> v
        | None -> ng "= ∅ on a complex z-expression"
      end
      | Ast.Binop (Ast.Eq, e, s) when is_empty_set e && free s -> begin
        match emptiness s with
        | Some v -> v
        | None -> ng "= ∅ on a complex z-expression"
      end
      | Ast.Binop (Ast.Ne, s, e) when is_empty_set e && free s ->
        negate (go (Ast.Binop (Ast.Eq, s, e)))
      | Ast.Binop (Ast.Ne, e, s) when is_empty_set e && free s ->
        negate (go (Ast.Binop (Ast.Eq, e, s)))
      (* --- aggregates -------------------------------------------------- *)
      | Ast.Binop (op, Ast.Agg (agg, s), e) when is_z s && not (free e) ->
        aggregate op agg e
      | Ast.Binop (op, e, Ast.Agg (agg, s)) when is_z s && not (free e) ->
        aggregate (flip_cmp op) agg e
      (* --- set comparisons --------------------------------------------- *)
      | Ast.Binop (Ast.Subseteq, s, e) when is_z s && not (free e) ->
        (* z ⊆ e ≡ ¬∃v ∈ z (v ∉ e) *)
        let v = fresh () in
        Not_exists { var = v; body = enot (emem (Ast.Var v) e) }
      | Ast.Binop (Ast.Supseteq, e, s) when is_z s && not (free e) ->
        go (Ast.Binop (Ast.Subseteq, s, e))
      | Ast.Binop (Ast.Subseteq, e, s) when is_z s && not (free e) ->
        ng "e ⊆ z requires the whole subquery result"
      | Ast.Binop (Ast.Supseteq, s, e) when is_z s && not (free e) ->
        ng "z ⊇ e requires the whole subquery result"
      | Ast.Binop ((Ast.Subset | Ast.Supset), a, b)
        when (free a || free b) && not (free a && free b) ->
        ng "strict set inclusion needs cardinalities"
      | Ast.Binop (Ast.Eq, a, b) when free a || free b ->
        (* set equality z = e (emptiness handled above) *)
        ng "set equality with z"
      | Ast.Binop (Ast.Ne, a, b) when free a || free b -> begin
        (* z ≠ e ≡ ¬(z = e): try emptiness through negation first. *)
        match go (enot (Ast.Binop (Ast.Eq, a, b))) with
        | Needs_grouping _ -> ng "set inequality with z"
        | v -> v
      end
      | _ -> ng "unrecognized use of z"

  and membership e s =
    if is_z s then
      let v = fresh () in
      Exists { var = v; body = Ast.Binop (Ast.Eq, Ast.Var v, e) }
    else
      match s with
      | Ast.Binop (Ast.Inter, a, b) ->
        go (Ast.Binop (Ast.And, emem e a, emem e b))
      | Ast.Binop (Ast.Union, a, b) ->
        go (Ast.Binop (Ast.Or, emem e a, emem e b))
      | Ast.Binop (Ast.Diff, a, b) ->
        go (Ast.Binop (Ast.And, emem e a, enot (emem e b)))
      | _ -> Needs_grouping "membership in a complex z-expression"

  and aggregate op agg e =
    let ng reason = Needs_grouping reason in
    match agg, op, e with
    (* count(z) compared with the constant 0 or 1 *)
    | Ast.Count, Ast.Eq, Ast.Const (Cobj.Value.Int 0) ->
      Not_exists { var = fresh (); body = vtrue }
    | Ast.Count, Ast.Ne, Ast.Const (Cobj.Value.Int 0)
    | Ast.Count, Ast.Gt, Ast.Const (Cobj.Value.Int 0)
    | Ast.Count, Ast.Ge, Ast.Const (Cobj.Value.Int 1) ->
      Exists { var = fresh (); body = vtrue }
    | Ast.Count, Ast.Lt, Ast.Const (Cobj.Value.Int 1)
    | Ast.Count, Ast.Le, Ast.Const (Cobj.Value.Int 0) ->
      Not_exists { var = fresh (); body = vtrue }
    | Ast.Count, _, _ -> ng "count(z) comparison needs the cardinality"
    (* MIN/MAX one-sided bounds (extension): sound under the
       undefined-aggregate-is-false reading — both sides false on z = ∅.
       The opposite directions (max(z) < e etc.) would assert a bound on
       every member AND non-emptiness, which is not a pure ∃/¬∃ form. *)
    | Ast.Max, Ast.Gt, e ->
      let v = fresh () in
      Exists { var = v; body = Ast.Binop (Ast.Gt, Ast.Var v, e) }
    | Ast.Max, Ast.Ge, e ->
      let v = fresh () in
      Exists { var = v; body = Ast.Binop (Ast.Ge, Ast.Var v, e) }
    | Ast.Min, Ast.Lt, e ->
      let v = fresh () in
      Exists { var = v; body = Ast.Binop (Ast.Lt, Ast.Var v, e) }
    | Ast.Min, Ast.Le, e ->
      let v = fresh () in
      Exists { var = v; body = Ast.Binop (Ast.Le, Ast.Var v, e) }
    | (Ast.Max | Ast.Min), _, _ ->
      ng "MIN/MAX comparison in a direction needing the whole set"
    | (Ast.Sum | Ast.Avg), _, _ -> ng "SUM/AVG comparison needs the whole set"

  in
  match go p with
  | (Exists { body; _ } | Not_exists { body; _ }) as v ->
    if Ast.occurs_free z body then
      Needs_grouping "internal: residual z in rewritten body"
    else v
  | Needs_grouping _ as v -> v

let to_expr ~z = function
  | Exists { var; body } ->
    Some (Ast.Quant (Ast.Exists, var, Ast.Var z, body))
  | Not_exists { var; body } ->
    Some (Ast.Unop (Ast.Not, Ast.Quant (Ast.Exists, var, Ast.Var z, body)))
  | Needs_grouping _ -> None

let pp_verdict ppf = function
  | Exists { var; body } ->
    Fmt.pf ppf "∃%s ∈ z (%a)" var Lang.Pretty.pp_math body
  | Not_exists { var; body } ->
    Fmt.pf ppf "¬∃%s ∈ z (%a)" var Lang.Pretty.pp_math body
  | Needs_grouping reason -> Fmt.pf ppf "needs grouping — %s" reason

let all_vars_of e = all_vars Ast.String_set.empty e
