module Ast = Lang.Ast
module Plan = Algebra.Plan
module Sset = Ast.String_set

type state = { mutable used : Sset.t }

let fresh st base =
  let v = Ast.fresh st.used base in
  st.used <- Sset.add v st.used;
  v

(* Replace the [Unit] leaves of [plan] by [base] — used to put a WITH-bound
   context under a translated body. Does not descend into Apply subqueries:
   their Unit roots denote their own ambient context. *)
let rec graft base plan =
  match plan with
  | Plan.Unit -> base
  | Plan.Table _ -> plan
  | Plan.Select r -> Plan.Select { r with input = graft base r.input }
  | Plan.Join r ->
    Plan.Join { r with left = graft base r.left; right = graft base r.right }
  | Plan.Semijoin r ->
    Plan.Semijoin
      { r with left = graft base r.left; right = graft base r.right }
  | Plan.Antijoin r ->
    Plan.Antijoin
      { r with left = graft base r.left; right = graft base r.right }
  | Plan.Outerjoin r ->
    Plan.Outerjoin
      { r with left = graft base r.left; right = graft base r.right }
  | Plan.Nestjoin r ->
    Plan.Nestjoin
      { r with left = graft base r.left; right = graft base r.right }
  | Plan.Unnest r -> Plan.Unnest { r with input = graft base r.input }
  | Plan.Nest r -> Plan.Nest { r with input = graft base r.input }
  | Plan.Extend r -> Plan.Extend { r with input = graft base r.input }
  | Plan.Project r -> Plan.Project { r with input = graft base r.input }
  | Plan.Apply r -> Plan.Apply { r with input = graft base r.input }
  | Plan.Union r ->
    Plan.Union { left = graft base r.left; right = graft base r.right }

let rec translate_query st e =
  match e with
  | Ast.Sfw { select; from; where } -> translate_sfw st select from where
  | Ast.UnnestE inner ->
    (* UNNEST(q): iterate the (set-valued) result of q — §5's collapsible
       SELECT-nesting arrives here as [Unnest] over the inner result. *)
    let q = translate_query st inner in
    let v = fresh st "u" in
    {
      Plan.plan = Plan.Unnest { expr = q.Plan.result; var = v; input = q.plan };
      result = Ast.Var v;
    }
  | Ast.Let (v, def, body) ->
    let base, def' = hoist st Plan.Unit def in
    let q = translate_query st body in
    {
      q with
      Plan.plan = graft (Plan.Extend { var = v; expr = def'; input = base }) q.Plan.plan;
    }
  | other ->
    (* Generic set-valued expression: hoist its subqueries, then iterate. *)
    let plan, e' = hoist st Plan.Unit other in
    let v = fresh st "u" in
    {
      Plan.plan = Plan.Unnest { expr = e'; var = v; input = plan };
      result = Ast.Var v;
    }

and translate_sfw st select from where =
  let plan =
    List.fold_left
      (fun plan (v, operand) ->
        match operand, plan with
        | Ast.TableRef name, None -> Some (Plan.Table { name; var = v })
        | Ast.TableRef name, Some p ->
          Some
            (Plan.Join
               {
                 pred = Ast.vbool true;
                 left = p;
                 right = Plan.Table { name; var = v };
               })
        | e, prev ->
          let base = Option.value prev ~default:Plan.Unit in
          let p', e' = hoist st base e in
          Some (Plan.Unnest { expr = e'; var = v; input = p' }))
      None from
  in
  let plan = Option.value plan ~default:Plan.Unit in
  let plan =
    match where with
    | None -> plan
    | Some w ->
      let p', w' = hoist st plan w in
      Plan.Select { pred = w'; input = p' }
  in
  let plan, select' = hoist st plan select in
  { Plan.plan; result = select' }

(* Hoist every SFW block out of [e] into Apply nodes stacked on [plan],
   provided the block does not capture a variable bound locally within [e]
   (by a quantifier, WITH, or an enclosing FROM inside [e] itself). *)
and hoist st plan e =
  let plan = ref plan in
  let rec go bound e =
    match e with
    | Ast.Sfw _ when Sset.is_empty (Sset.inter (Ast.free_vars e) bound) ->
      let q = translate_query st e in
      let z = fresh st "q" in
      plan := Plan.Apply { var = z; subquery = q; input = !plan };
      Ast.Var z
    | Ast.Sfw { select; from; where } ->
      (* Captures a local binder: stays inline, but still hoist deeper
         independent blocks inside its operands. *)
      let bound' =
        List.fold_left (fun b (v, _) -> Sset.add v b) bound from
      in
      Ast.Sfw
        {
          select = go bound' select;
          from = List.map (fun (v, op) -> (v, go bound op)) from;
          where = Option.map (go bound') where;
        }
    | Ast.Const _ | Ast.Var _ | Ast.TableRef _ -> e
    | Ast.Field (e1, l) -> Ast.Field (go bound e1, l)
    | Ast.TupleE fields ->
      Ast.TupleE (List.map (fun (l, e1) -> (l, go bound e1)) fields)
    | Ast.SetE es -> Ast.SetE (List.map (go bound) es)
    | Ast.ListE es -> Ast.ListE (List.map (go bound) es)
    | Ast.Unop (op, e1) -> Ast.Unop (op, go bound e1)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, go bound a, go bound b)
    | Ast.Agg (a, e1) -> Ast.Agg (a, go bound e1)
    | Ast.UnnestE e1 -> Ast.UnnestE (go bound e1)
    | Ast.If (c, a, b) -> Ast.If (go bound c, go bound a, go bound b)
    | Ast.VariantE (tag, e1) -> Ast.VariantE (tag, go bound e1)
    | Ast.IsTag (e1, tag) -> Ast.IsTag (go bound e1, tag)
    | Ast.AsTag (e1, tag) -> Ast.AsTag (go bound e1, tag)
    | Ast.Quant (q, v, s, p) ->
      Ast.Quant (q, v, go bound s, go (Sset.add v bound) p)
    | Ast.Let (v, d, b) -> Ast.Let (v, go bound d, go (Sset.add v bound) b)
  in
  let e' = go Sset.empty e in
  (!plan, e')

let query catalog e =
  match Lang.Types.check_query catalog e with
  | Error err -> Error (Fmt.str "%a" Lang.Types.pp_error err)
  | Ok (resolved, ty) -> (
    match ty with
    | Cobj.Ctype.TSet _ | Cobj.Ctype.TAny ->
      let st = { used = Classify.all_vars_of resolved } in
      Ok (translate_query st resolved)
    | t ->
      Error
        (Fmt.str "not a set-valued query (type %a): %s" Cobj.Ctype.pp t
           (Lang.Pretty.to_string resolved)))

let query_exn catalog e =
  match query catalog e with
  | Ok q -> q
  | Error msg -> invalid_arg ("Core.Translate: " ^ msg)
