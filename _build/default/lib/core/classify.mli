(** Predicate classification — Theorem 1 and Table 2 of the paper.

    Given the predicate [P(x, z)] between two query blocks, where [z] names
    the (set-valued) subquery result, decide whether grouping of the inner
    operand is necessary:

    - [P] rewritable to [∃v ∈ z (P'(x, v))] — no grouping; the nested query
      flattens to a {b semijoin};
    - [P] rewritable to [¬∃v ∈ z (P'(x, v))] — no grouping; it flattens to an
      {b antijoin};
    - otherwise the subquery result must be available as a whole — grouping
      is required and the {b nest join} applies.

    The classifier is a normalizing rewriter, not a pattern table: it pushes
    negations, converts universal quantification over [z]
    ([∀v ∈ z P ≡ ¬∃v ∈ z ¬P]), unfolds set operators applied to [z]
    ([e ∈ z ∩ w ≡ e ∈ z ∧ e ∈ w] …), recognizes emptiness and count-bound
    tests, and combines partial verdicts through the absorption laws
    [∃v(B) ∧ C ≡ ∃v(B ∧ C)] and [¬∃v(B) ∨ C ≡ ¬∃v(B ∧ ¬C)] for [z]-free [C].
    Every row of the paper's Table 2 is covered (see {!Table2}); the
    MIN/MAX comparison rewrites ([e < max(z) ≡ ∃v ∈ z (e < v)] etc.) are an
    extension beyond the paper, valid under the partial-aggregate semantics
    of {!Lang.Interp.truth} (an undefined aggregate makes a predicate false).

    Soundness is established empirically by qcheck tests: for every
    classified predicate, the rewritten form agrees with the original on
    randomized instances including [z = ∅]. *)

type verdict =
  | Exists of { var : string; body : Lang.Ast.expr }
      (** [P ≡ ∃var ∈ z (body)]; [z] is not free in [body] *)
  | Not_exists of { var : string; body : Lang.Ast.expr }
      (** [P ≡ ¬∃var ∈ z (body)] *)
  | Needs_grouping of string
      (** no rewrite found; the payload says which subterm blocked it *)

val classify : z:string -> Lang.Ast.expr -> verdict
(** [classify ~z p] — [p] must be a boolean predicate; [z] the subquery
    variable. If [z] is not free in [p] the verdict is
    [Needs_grouping "z not free"] (the caller should not have asked). *)

val to_expr : z:string -> verdict -> Lang.Ast.expr option
(** The rewritten predicate ([∃v ∈ z (body)] or [NOT ∃v ∈ z (body)]),
    [None] for [Needs_grouping]. Useful for printing Table 2 and for
    equivalence tests. *)

val pp_verdict : verdict Fmt.t

val all_vars_of : Lang.Ast.expr -> Lang.Ast.String_set.t
(** Every identifier occurring in the expression, free or bound — used by
    callers that must invent fresh variable names. *)
