(** Naive translation of TM queries into the algebra.

    Produces the direct, nested-loop-shaped plan: FROM clauses become scans,
    joins (independent table operands) and unnests (operands depending on
    earlier variables); every hoistable subquery in the WHERE or SELECT
    clause becomes an {!Algebra.Plan.plan.Apply} binding a fresh variable —
    the algebraic image of correlated re-evaluation. No optimization happens
    here; [Decorrelate] turns the Applies into joins.

    A subquery is hoistable when it does not reference variables bound by an
    enclosing quantifier within the same expression; non-hoistable subqueries
    stay inline in the expression (the engine's expression evaluator handles
    them by nested iteration). *)

val query :
  Cobj.Catalog.t -> Lang.Ast.expr -> (Algebra.Plan.query, string) result
(** Translate a resolved, well-typed, set-valued expression (an SFW block,
    [UNNEST (...)], a WITH-bound block, or any other set-valued form). *)

val query_exn : Cobj.Catalog.t -> Lang.Ast.expr -> Algebra.Plan.query
