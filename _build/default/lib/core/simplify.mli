(** Expression simplification: constant folding and algebraic identities.

    Decorrelation substitutes subquery results into predicates
    ([P'(x, G(x,y))]) and the baselines substitute [z := ∅]; both leave
    foldable residue like [COUNT({}) = 0], [true AND p] or [¬¬p]. The
    simplifier normalizes plans before physical planning:

    - constant subexpressions evaluate at compile time (when total: a
      folding step that would raise is left in place);
    - boolean identities: [true ∧ p → p], [false ∧ p → false],
      [true ∨ p → true], [false ∨ p → p], [¬¬p → p], [¬true → false];
    - set identities: [s ∪ ∅ → s], [s ∩ ∅ → ∅], [s ∖ ∅ → s],
      [e ∈ ∅ → false], [∅ ⊆ s → true];
    - comparison of an expression with itself: [e = e → true],
      [e ≠ e → false] (safe: expressions are pure);
    - quantifiers over ∅: [∃v ∈ ∅ (p) → false], [∀v ∈ ∅ (p) → true].

    Semantic preservation is property-tested ([test/test_simplify.ml]),
    including the partial-aggregate reading: folding never turns an
    [Undefined]-raising predicate into a defined one or vice versa in
    [truth] position — MIN/MAX/AVG of possibly-empty operands are only
    folded when the operand is a non-empty constant, and identities that
    discard an operand require the discarded expression to be total (no
    partial aggregates, no division). Caveat: field access counts as total,
    which is sound for well-typed rows; it would not be for NULL-padded
    rows, but no plan produced by this library evaluates fields of padded
    rows (ν* filters them first). *)

val expr : Cobj.Catalog.t -> Lang.Ast.expr -> Lang.Ast.expr

val plan : Cobj.Catalog.t -> Algebra.Plan.plan -> Algebra.Plan.plan
(** Simplify every expression in a plan; a selection whose predicate folds
    to [true] is dropped, to [false] the selection is kept (emptying the
    input cheaply at run time). *)

val query : Cobj.Catalog.t -> Algebra.Plan.query -> Algebra.Plan.query
