type expected =
  | Semijoin
  | Antijoin
  | Grouping

type row = {
  name : string;
  source : string;
  expected : expected;
  in_paper : bool;
}

let paper name source expected = { name; source; expected; in_paper = true }
let ext name source expected = { name; source; expected; in_paper = false }

(* [x.b] scalar INT, [x.a] set of INT, [z] set of INT. *)
let rows =
  [
    (* --- relational (SQL-expressible) rows --------------------------- *)
    paper "z = ∅" "z = {}" Antijoin;
    ext "z ≠ ∅" "z <> {}" Semijoin;
    paper "count(z) = 0" "COUNT(z) = 0" Antijoin;
    ext "count(z) ≠ 0" "COUNT(z) <> 0" Semijoin;
    ext "count(z) > 0" "COUNT(z) > 0" Semijoin;
    paper "x.b = count(z)" "x.b = COUNT(z)" Grouping;
    paper "x.b ∈ z" "x.b IN z" Semijoin;
    paper "x.b ∉ z" "x.b NOT IN z" Antijoin;
    ext "x.b < max(z)" "x.b < MAX(z)" Semijoin;
    ext "x.b <= max(z)" "x.b <= MAX(z)" Semijoin;
    ext "x.b > min(z)" "x.b > MIN(z)" Semijoin;
    ext "x.b >= max(z)" "x.b >= MAX(z)" Grouping;
    ext "x.b = max(z)" "x.b = MAX(z)" Grouping;
    ext "x.b = sum(z)" "x.b = SUM(z)" Grouping;
    (* --- complex-object rows (set-valued attribute x.a) -------------- *)
    paper "x.a ⊆ z" "x.a SUBSETEQ z" Grouping;
    paper "x.a ⊇ z" "x.a SUPSETEQ z" Antijoin;
    paper "x.a ⊂ z" "x.a SUBSET z" Grouping;
    paper "x.a ⊃ z" "x.a SUPSET z" Grouping;
    paper "x.a = z" "x.a = z" Grouping;
    paper "x.a ≠ z" "x.a <> z" Grouping;
    paper "x.a ∩ z = ∅" "x.a INTERSECT z = {}" Antijoin;
    paper "x.a ∩ z ≠ ∅" "x.a INTERSECT z <> {}" Semijoin;
    paper "∀w ∈ x.a (w ∈ z)" "FORALL w IN x.a (w IN z)" Grouping;
    paper "∀w ∈ x.a (w ∉ z)" "FORALL w IN x.a (w NOT IN z)" Antijoin;
    paper "∃v ∈ z (true)" "EXISTS v IN z (true)" Semijoin;
    paper "¬∃v ∈ z (true)" "NOT EXISTS v IN z (true)" Antijoin;
    paper "∃v ∈ z (v = x.b)" "EXISTS v IN z (v = x.b)" Semijoin;
    paper "¬∃v ∈ z (v = x.b)" "NOT EXISTS v IN z (v = x.b)" Antijoin;
    paper "∃v ∈ z (v ∈ x.a)" "EXISTS v IN z (v IN x.a)" Semijoin;
    paper "¬∃v ∈ z (v ∈ x.a)" "NOT EXISTS v IN z (v IN x.a)" Antijoin;
    ext "∃w ∈ x.a (w ∈ z)" "EXISTS w IN x.a (w IN z)" Semijoin;
    ext "z ⊆ x.a" "z SUBSETEQ x.a" Antijoin;
    ext "z ∖ x.a = ∅" "z EXCEPT x.a = {}" Antijoin;
    ext "x.b ∈ z ∩ x.a" "x.b IN z INTERSECT x.a" Semijoin;
    ext "x.b ∈ z ∖ x.a" "x.b IN z EXCEPT x.a" Semijoin;
    ext "x.b ∈ z ∪ x.a" "x.b IN z UNION x.a" Grouping;
    ext "x.b ∈ z ∧ C" "x.b IN z AND x.b > 0" Semijoin;
    ext "x.b ∉ z ∨ C" "x.b NOT IN z OR x.b > 0" Antijoin;
    ext "x.b ∈ z ∨ C" "x.b IN z OR x.b > 0" Grouping;
    ext "count(z) = count(x.a)" "COUNT(z) = COUNT(x.a)" Grouping;
    (* variant-valued members behave like any other complex value *)
    ext "num!x.b ∈ z" "num!x.b IN z" Semijoin;
    ext "num!x.b ∉ z" "num!x.b NOT IN z" Antijoin;
  ]

let predicate row = Lang.Parser.expr row.source

let kind = function
  | Classify.Exists _ -> Semijoin
  | Classify.Not_exists _ -> Antijoin
  | Classify.Needs_grouping _ -> Grouping

let expected_to_string = function
  | Semijoin -> "semijoin"
  | Antijoin -> "antijoin"
  | Grouping -> "grouping"
