(** Logical rewrites applied after decorrelation.

    A small fixpoint rewriter:

    - selection fusion: [σ_p ∘ σ_q → σ_{p∧q}];
    - selection pushdown into join operands: conjuncts referencing only the
      left (resp. right) operand's variables move below the join — including
      below the {b left} operand of semijoin, antijoin, outerjoin and nest
      join (pushing into their right operand or predicate is unsound for the
      dangling-preserving operators, cf. the paper's remark that the nest
      join has fewer pleasant algebraic properties);
    - two-sided conjuncts over a plain [Join] merge into the join predicate
      (where the planner can recognize equi-keys);
    - dead nest join elimination: [π_X (X Δ Y) = X] — a nest join whose
      label is referenced nowhere upstream is dropped (first equivalence of
      §6's list);
    - unit elimination: [Join (true, p, Unit) → p] and symmetric. *)

val plan : live:Lang.Ast.String_set.t -> Algebra.Plan.plan -> Algebra.Plan.plan
val query : Algebra.Plan.query -> Algebra.Plan.query
