(** Decorrelation: turning Apply (naive correlated evaluation) into joins.

    This is the paper's transformation pipeline (§§4–8), applied
    innermost-first as in the §8 example:

    - [Select (P) ∘ Apply (z = subquery)] where the subquery splits into an
      uncorrelated base [Y] plus correlation conjuncts [Q(x,y)], and [z] is
      not referenced elsewhere:
      {ul
      {- [P] classified [∃v ∈ z (P')] → {b semijoin} on [Q ∧ P'[v := G]];}
      {- [P] classified [¬∃v ∈ z (P')] → {b antijoin} on the same predicate;}
      {- otherwise → {b nest join} on [Q] with function [G], the original
         [P] remaining as a residual selection over the grouped attribute.}}
    - A bare [Apply] (nesting in the SELECT clause, or [z] still live
      upstream) → {b nest join} (§5: SELECT-clause nesting always groups).
    - [Unnest (z) ∘ Apply (z = subquery)] with [z] dead elsewhere → plain
      {b join} + extend (§5's special collapsible case).
    - Fully uncorrelated subqueries are left as [Apply]: they are constants;
      the physical planner memoizes them into a single evaluation.

    Splitting renames subquery-bound variables that clash with outer
    variables; when renaming cannot be done safely (a name is bound more
    than once inside the subquery, or doubles as a correlation reference)
    the Apply is conservatively left in place — correct, just unoptimized. *)

val query : Algebra.Plan.query -> Algebra.Plan.query

val plan_with_live :
  live:Lang.Ast.String_set.t -> Algebra.Plan.plan -> Algebra.Plan.plan
(** Decorrelate a plan whose output rows feed expressions referencing [live]
    variables (used recursively and by tests). *)

val split_subquery_for_baselines :
  Lang.Ast.String_set.t ->
  Algebra.Plan.query ->
  (Algebra.Plan.plan * Lang.Ast.expr * Lang.Ast.expr) option
(** [split_subquery_for_baselines outer q] splits [q] into an uncorrelated
    base plan, the conjunction of correlation conjuncts referencing [outer],
    and the result expression — renaming clashing subquery variables first.
    Shared with the Kim / Ganski–Wong baselines. *)
