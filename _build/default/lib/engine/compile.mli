(** Expression compilation: turn a scalar expression into a closure.

    The reference interpreter re-traverses the AST for every row; the
    executor instead compiles each operator's expressions once when the
    operator starts producing rows, so per-row work is only the value
    computation. Semantics are identical to {!Lang.Interp} by construction
    (each case defers to the same value primitives) and by test
    ([test/test_compile.ml] checks agreement on random expressions and
    environments).

    Inline SFW blocks (non-hoistable subqueries) fall back to the
    interpreter — they re-enter nested-loop evaluation anyway.

    {!enabled} is the ablation switch for the [expr-compile] bench: when
    false, {!expr} and {!pred} degrade to interpreter calls. *)

val enabled : bool ref
(** Default [true]. *)

val expr : Cobj.Catalog.t -> Lang.Ast.expr -> Cobj.Env.t -> Cobj.Value.t
(** [expr catalog e] compiles [e]; apply the result to row environments.
    Partial application performs the compilation. *)

val pred : Cobj.Catalog.t -> Lang.Ast.expr -> Cobj.Env.t -> bool
(** Predicate variant with the partial-aggregate reading of
    {!Lang.Interp.truth} (an undefined aggregate is false). *)
