type t = {
  mutable rows_out : int;
  mutable predicate_evals : int;
  mutable hash_builds : int;
  mutable hash_probes : int;
  mutable sorts : int;
  mutable applies : int;
  mutable apply_hits : int;
}

let create () =
  {
    rows_out = 0;
    predicate_evals = 0;
    hash_builds = 0;
    hash_probes = 0;
    sorts = 0;
    applies = 0;
    apply_hits = 0;
  }

let reset t =
  t.rows_out <- 0;
  t.predicate_evals <- 0;
  t.hash_builds <- 0;
  t.hash_probes <- 0;
  t.sorts <- 0;
  t.applies <- 0;
  t.apply_hits <- 0

let total_work t =
  t.rows_out + t.predicate_evals + t.hash_builds + t.hash_probes + t.sorts
  + t.applies

let pp ppf t =
  Fmt.pf ppf
    "rows=%d pred-evals=%d builds=%d probes=%d sorts=%d applies=%d \
     apply-hits=%d"
    t.rows_out t.predicate_evals t.hash_builds t.hash_probes t.sorts
    t.applies t.apply_hits
