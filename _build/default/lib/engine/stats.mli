(** Work counters collected during execution — machine-independent cost
    evidence for the benches (tuple comparisons, hash activity, subquery
    re-evaluations). *)

type t = {
  mutable rows_out : int;     (** rows emitted by all operators *)
  mutable predicate_evals : int;  (** join/filter predicate evaluations *)
  mutable hash_builds : int;  (** rows inserted into hash tables *)
  mutable hash_probes : int;
  mutable sorts : int;        (** rows passed through sort operators *)
  mutable applies : int;      (** correlated subquery evaluations *)
  mutable apply_hits : int;   (** memoized apply cache hits *)
}

val create : unit -> t
val reset : t -> unit
val total_work : t -> int
(** A single scalar summary: sum of all counters. *)

val pp : t Fmt.t
