type expr = Lang.Ast.expr

type t =
  | Unit_row
  | Scan of { table : string; var : string }
  | Filter of { pred : expr; input : t }
  | Nl_join of { pred : expr; left : t; right : t }
  | Hash_join of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      left : t;
      right : t;
    }
  | Merge_join of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      left : t;
      right : t;
    }
  | Nl_semijoin of { pred : expr; anti : bool; left : t; right : t }
  | Hash_semijoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      anti : bool;
      left : t;
      right : t;
    }
  | Merge_semijoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      anti : bool;
      left : t;
      right : t;
    }
  | Nl_outerjoin of { pred : expr; left : t; right : t }
  | Hash_outerjoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      left : t;
      right : t;
    }
  | Merge_outerjoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      left : t;
      right : t;
    }
  | Nl_nestjoin of {
      pred : expr;
      func : expr;
      label : string;
      left : t;
      right : t;
    }
  | Hash_nestjoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      func : expr;
      label : string;
      left : t;
      right : t;
    }
  | Hash_nestjoin_left of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      func : expr;
      label : string;
      left : t;
      right : t;
    }
  | Merge_nestjoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      func : expr;
      label : string;
      left : t;
      right : t;
    }
  | Unnest_op of { expr : expr; var : string; input : t }
  | Nest_op of {
      by : string list;
      label : string;
      func : expr;
      nulls : string list;
      input : t;
    }
  | Extend_op of { var : string; expr : expr; input : t }
  | Project_op of { vars : string list; input : t }
  | Apply_op of { var : string; subquery : query; memo : bool; input : t }
  | Index_join of {
      lkey : expr;
      table : string;
      var : string;
      field : string;
      residual : expr option;
      left : t;
    }
  | Index_semijoin of {
      lkey : expr;
      table : string;
      var : string;
      field : string;
      residual : expr option;
      anti : bool;
      left : t;
    }
  | Index_nestjoin of {
      lkey : expr;
      table : string;
      var : string;
      field : string;
      residual : expr option;
      func : expr;
      label : string;
      left : t;
    }

  | Union_op of { left : t; right : t }

and query = { plan : t; result : expr }

let rec vars_of = function
  | Unit_row -> []
  | Scan { var; _ } -> [ var ]
  | Filter { input; _ } -> vars_of input
  | Nl_join { left; right; _ }
  | Hash_join { left; right; _ }
  | Merge_join { left; right; _ }
  | Nl_outerjoin { left; right; _ }
  | Hash_outerjoin { left; right; _ }
  | Merge_outerjoin { left; right; _ } ->
    vars_of left @ vars_of right
  | Nl_semijoin { left; _ } | Hash_semijoin { left; _ }
  | Merge_semijoin { left; _ } ->
    vars_of left
  | Nl_nestjoin { left; label; _ }
  | Hash_nestjoin { left; label; _ }
  | Hash_nestjoin_left { left; label; _ }
  | Merge_nestjoin { left; label; _ } ->
    vars_of left @ [ label ]
  | Unnest_op { var; input; _ } -> vars_of input @ [ var ]
  | Nest_op { by; label; _ } -> by @ [ label ]
  | Extend_op { var; input; _ } -> vars_of input @ [ var ]
  | Project_op { vars; _ } -> vars
  | Apply_op { var; input; _ } -> vars_of input @ [ var ]
  | Index_join { var; left; _ } -> vars_of left @ [ var ]
  | Union_op { left; _ } -> vars_of left
  | Index_semijoin { left; _ } -> vars_of left
  | Index_nestjoin { left; label; _ } -> vars_of left @ [ label ]

let rec size = function
  | Unit_row | Scan _ -> 1
  | Filter { input; _ }
  | Unnest_op { input; _ }
  | Nest_op { input; _ }
  | Extend_op { input; _ }
  | Project_op { input; _ } ->
    1 + size input
  | Nl_join { left; right; _ }
  | Hash_join { left; right; _ }
  | Merge_join { left; right; _ }
  | Nl_semijoin { left; right; _ }
  | Hash_semijoin { left; right; _ }
  | Merge_semijoin { left; right; _ }
  | Nl_outerjoin { left; right; _ }
  | Hash_outerjoin { left; right; _ }
  | Merge_outerjoin { left; right; _ }
  | Nl_nestjoin { left; right; _ }
  | Hash_nestjoin { left; right; _ }
  | Hash_nestjoin_left { left; right; _ }
  | Merge_nestjoin { left; right; _ } ->
    1 + size left + size right
  | Apply_op { subquery; input; _ } -> 1 + size subquery.plan + size input
  | Index_join { left; _ } | Index_semijoin { left; _ }
  | Index_nestjoin { left; _ } ->
    1 + size left
  | Union_op { left; right } -> 1 + size left + size right

let e = Lang.Pretty.pp

let pp_keys ppf (lkey, rkey, residual) =
  Fmt.pf ppf "[%a = %a]" e lkey e rkey;
  match residual with
  | None -> ()
  | Some r -> Fmt.pf ppf " residual=[%a]" e r

let rec pp ppf plan =
  let unary name args input =
    Fmt.pf ppf "@[<v>%s%t@,└─ @[<v>%a@]@]" name args pp input
  in
  let binary name args left right =
    Fmt.pf ppf "@[<v>%s%t@,├─ @[<v>%a@]@,└─ @[<v>%a@]@]" name args pp left pp
      right
  in
  match plan with
  | Unit_row -> Fmt.pf ppf "unit"
  | Scan { table; var } -> Fmt.pf ppf "scan %s %s" table var
  | Filter { pred; input } ->
    unary "filter" (fun ppf -> Fmt.pf ppf " [%a]" e pred) input
  | Nl_join { pred; left; right } ->
    binary "nl-join" (fun ppf -> Fmt.pf ppf " [%a]" e pred) left right
  | Hash_join { lkey; rkey; residual; left; right } ->
    binary "hash-join" (fun ppf -> Fmt.pf ppf " %a" pp_keys (lkey, rkey, residual)) left right
  | Merge_join { lkey; rkey; residual; left; right } ->
    binary "merge-join" (fun ppf -> Fmt.pf ppf " %a" pp_keys (lkey, rkey, residual)) left right
  | Nl_semijoin { pred; anti; left; right } ->
    binary
      (if anti then "nl-antijoin" else "nl-semijoin")
      (fun ppf -> Fmt.pf ppf " [%a]" e pred)
      left right
  | Hash_semijoin { lkey; rkey; residual; anti; left; right } ->
    binary
      (if anti then "hash-antijoin" else "hash-semijoin")
      (fun ppf -> Fmt.pf ppf " %a" pp_keys (lkey, rkey, residual))
      left right
  | Merge_semijoin { lkey; rkey; residual; anti; left; right } ->
    binary
      (if anti then "merge-antijoin" else "merge-semijoin")
      (fun ppf -> Fmt.pf ppf " %a" pp_keys (lkey, rkey, residual))
      left right
  | Nl_outerjoin { pred; left; right } ->
    binary "nl-outerjoin" (fun ppf -> Fmt.pf ppf " [%a]" e pred) left right
  | Hash_outerjoin { lkey; rkey; residual; left; right } ->
    binary "hash-outerjoin"
      (fun ppf -> Fmt.pf ppf " %a" pp_keys (lkey, rkey, residual))
      left right
  | Merge_outerjoin { lkey; rkey; residual; left; right } ->
    binary "merge-outerjoin"
      (fun ppf -> Fmt.pf ppf " %a" pp_keys (lkey, rkey, residual))
      left right
  | Nl_nestjoin { pred; func; label; left; right } ->
    binary "nl-nestjoin"
      (fun ppf -> Fmt.pf ppf " [%a] func=%a label=%s" e pred e func label)
      left right
  | Hash_nestjoin { lkey; rkey; residual; func; label; left; right } ->
    binary "hash-nestjoin"
      (fun ppf ->
        Fmt.pf ppf " %a func=%a label=%s" pp_keys (lkey, rkey, residual) e
          func label)
      left right
  | Hash_nestjoin_left { lkey; rkey; residual; func; label; left; right } ->
    binary "hash-nestjoin(build=left)"
      (fun ppf ->
        Fmt.pf ppf " %a func=%a label=%s" pp_keys (lkey, rkey, residual) e
          func label)
      left right
  | Merge_nestjoin { lkey; rkey; residual; func; label; left; right } ->
    binary "merge-nestjoin"
      (fun ppf ->
        Fmt.pf ppf " %a func=%a label=%s" pp_keys (lkey, rkey, residual) e
          func label)
      left right
  | Unnest_op { expr; var; input } ->
    unary "unnest" (fun ppf -> Fmt.pf ppf " %s in %a" var e expr) input
  | Nest_op { by; label; func; nulls; input } ->
    unary
      (if nulls = [] then "nest" else "nest*")
      (fun ppf ->
        Fmt.pf ppf " by=[%s] label=%s func=%a" (String.concat ", " by) label e
          func)
      input
  | Extend_op { var; expr; input } ->
    unary "extend" (fun ppf -> Fmt.pf ppf " %s = %a" var e expr) input
  | Project_op { vars; input } ->
    unary "project" (fun ppf -> Fmt.pf ppf " [%s]" (String.concat ", " vars)) input
  | Apply_op { var; subquery; memo; input } ->
    Fmt.pf ppf "@[<v>apply%s %s = (result %a)@,├─ @[<v>%a@]@,└─ @[<v>%a@]@]"
      (if memo then "(memo)" else "")
      var e subquery.result pp subquery.plan pp input
  | Index_join { lkey; table; var; field; residual; left } ->
    unary "index-join"
      (fun ppf ->
        Fmt.pf ppf " [%a → %s.%s] on %s %s%a" e lkey var field table var
          pp_residual residual)
      left
  | Index_semijoin { lkey; table; var; field; residual; anti; left } ->
    unary
      (if anti then "index-antijoin" else "index-semijoin")
      (fun ppf ->
        Fmt.pf ppf " [%a → %s.%s] on %s %s%a" e lkey var field table var
          pp_residual residual)
      left
  | Index_nestjoin { lkey; table; var; field; residual; func; label; left } ->
    unary "index-nestjoin"
      (fun ppf ->
        Fmt.pf ppf " [%a → %s.%s] on %s %s func=%a label=%s%a" e lkey var
          field table var e func label pp_residual residual)
      left

  | Union_op { left; right } ->
    binary "union" (fun _ -> ()) left right

and pp_residual ppf = function
  | None -> ()
  | Some r -> Fmt.pf ppf " residual=[%a]" e r

let pp_query ppf { plan; result } =
  Fmt.pf ppf "@[<v>result %a@,└─ @[<v>%a@]@]" e result pp plan

let to_string plan = Fmt.str "%a" pp plan
