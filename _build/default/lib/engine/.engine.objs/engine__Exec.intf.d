lib/engine/exec.mli: Cobj Lang Physical Stats
