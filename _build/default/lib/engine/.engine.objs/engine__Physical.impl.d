lib/engine/physical.ml: Fmt Lang String
