lib/engine/exec.ml: Cobj Compile Hashtbl Lang List Option Physical Stats String
