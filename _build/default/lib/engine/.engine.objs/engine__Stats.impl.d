lib/engine/stats.ml: Fmt
