lib/engine/stats.mli: Fmt
