lib/engine/compile.mli: Cobj Lang
