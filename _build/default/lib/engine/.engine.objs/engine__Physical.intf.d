lib/engine/physical.mli: Fmt Lang
