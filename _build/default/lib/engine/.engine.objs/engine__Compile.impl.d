lib/engine/compile.ml: Cobj Lang Lazy List String
