(** Physical plans: logical operators with implementation choices.

    Equi-predicates are split into key expressions ([lkey] evaluated under
    left rows, [rkey] under right rows) plus an optional residual predicate;
    hash- and sort-based implementations require this form, the nested-loop
    forms take the predicate whole.

    The paper's implementation notes (§6) are reflected here: the hash nest
    join always builds on the right operand — output must stay grouped by
    left rows, so the left side cannot be the build table unless the join
    attribute is a key of the right operand (that special case is exercised
    by the build-side bench through {!Hash_nestjoin_left}). *)

type expr = Lang.Ast.expr

type t =
  | Unit_row  (** one row binding nothing (the ambient environment) *)
  | Scan of { table : string; var : string }
  | Filter of { pred : expr; input : t }
  | Nl_join of { pred : expr; left : t; right : t }
  | Hash_join of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      left : t;
      right : t;
    }  (** build right, probe left *)
  | Merge_join of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      left : t;
      right : t;
    }
  | Nl_semijoin of { pred : expr; anti : bool; left : t; right : t }
  | Hash_semijoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      anti : bool;
      left : t;
      right : t;
    }
  | Merge_semijoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      anti : bool;
      left : t;
      right : t;
    }
  | Nl_outerjoin of { pred : expr; left : t; right : t }
  | Hash_outerjoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      left : t;
      right : t;
    }
  | Merge_outerjoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      left : t;
      right : t;
    }
  | Nl_nestjoin of {
      pred : expr;
      func : expr;
      label : string;
      left : t;
      right : t;
    }
  | Hash_nestjoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      func : expr;
      label : string;
      left : t;
      right : t;
    }  (** build right (always legal) *)
  | Hash_nestjoin_left of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      func : expr;
      label : string;
      left : t;
      right : t;
    }  (** build left — requires [rkey] to be a key of the right operand;
           kept for the §6 build-side experiment *)
  | Merge_nestjoin of {
      lkey : expr;
      rkey : expr;
      residual : expr option;
      func : expr;
      label : string;
      left : t;
      right : t;
    }
  | Unnest_op of { expr : expr; var : string; input : t }
  | Nest_op of {
      by : string list;
      label : string;
      func : expr;
      nulls : string list;
      input : t;
    }
  | Extend_op of { var : string; expr : expr; input : t }
  | Project_op of { vars : string list; input : t }
  | Apply_op of { var : string; subquery : query; memo : bool; input : t }
      (** [memo] caches subquery results per correlation-variable value *)
  | Index_join of {
      lkey : expr;
      table : string;
      var : string;
      field : string;
      residual : expr option;
      left : t;
    }  (** probe the right base table's per-field hash index with the left
           key value — a hash join whose build is amortized across queries
           (the "alternative join implementations" of the paper's §2) *)
  | Index_semijoin of {
      lkey : expr;
      table : string;
      var : string;
      field : string;
      residual : expr option;
      anti : bool;
      left : t;
    }
  | Index_nestjoin of {
      lkey : expr;
      table : string;
      var : string;
      field : string;
      residual : expr option;
      func : expr;
      label : string;
      left : t;
    }

  | Union_op of { left : t; right : t }
      (** set union; operands bind the same variables *)

and query = { plan : t; result : expr }

val vars_of : t -> string list
(** Variables bound in output rows (mirrors {!Algebra.Plan.vars_of}). *)

val size : t -> int
val pp : t Fmt.t
val pp_query : query Fmt.t
val to_string : t -> string
