open Lexer

exception Parse_error of string * int

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (EOF, 0) | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> fst t | _ -> EOF
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let error st msg =
  let tok, pos = peek st in
  raise (Parse_error (Fmt.str "%s (found %a)" msg Lexer.pp_token tok, pos))

let expect st tok msg =
  if fst (peek st) = tok then advance st else error st msg

let ident st =
  match peek st with
  | IDENT x, _ ->
    advance st;
    x
  | _ -> error st "expected an identifier"

(* expr ::= orexpr (WITH ident '=' orexpr)* *)
let rec p_expr st =
  let body = p_or st in
  let rec withs acc =
    match peek st with
    | KWITH, _ ->
      advance st;
      let v = ident st in
      expect st EQ "expected '=' after WITH variable";
      let def = p_or st in
      withs (Ast.Let (v, def, acc))
    | _ -> acc
  in
  withs body

and p_or st =
  let lhs = p_and st in
  let rec go acc =
    match peek st with
    | KOR, _ ->
      advance st;
      go (Ast.Binop (Ast.Or, acc, p_and st))
    | _ -> acc
  in
  go lhs

and p_and st =
  let lhs = p_not st in
  let rec go acc =
    match peek st with
    | KAND, _ ->
      advance st;
      go (Ast.Binop (Ast.And, acc, p_not st))
    | _ -> acc
  in
  go lhs

and p_not st =
  match peek st with
  | KNOT, _ ->
    advance st;
    Ast.Unop (Ast.Not, p_not st)
  | _ -> p_cmp st

and p_cmp st =
  let lhs = p_setexpr st in
  let binop op =
    advance st;
    Ast.Binop (op, lhs, p_setexpr st)
  in
  match peek st with
  | EQ, _ -> binop Ast.Eq
  | NE, _ -> binop Ast.Ne
  | LT, _ -> binop Ast.Lt
  | LE, _ -> binop Ast.Le
  | GT, _ -> binop Ast.Gt
  | GE, _ -> binop Ast.Ge
  | KIN, _ -> binop Ast.Mem
  | KSUBSET, _ -> binop Ast.Subset
  | KSUBSETEQ, _ -> binop Ast.Subseteq
  | KSUPSET, _ -> binop Ast.Supset
  | KSUPSETEQ, _ -> binop Ast.Supseteq
  | KNOT, _ when peek2 st = KIN ->
    advance st;
    advance st;
    Ast.Unop (Ast.Not, Ast.Binop (Ast.Mem, lhs, p_setexpr st))
  | KIS, _ ->
    advance st;
    Ast.IsTag (lhs, ident st)
  | _ -> lhs

and p_setexpr st =
  let lhs = p_inter st in
  let rec go acc =
    match peek st with
    | KUNION, _ ->
      advance st;
      go (Ast.Binop (Ast.Union, acc, p_inter st))
    | KEXCEPT, _ ->
      advance st;
      go (Ast.Binop (Ast.Diff, acc, p_inter st))
    | _ -> acc
  in
  go lhs

and p_inter st =
  let lhs = p_add st in
  let rec go acc =
    match peek st with
    | KINTERSECT, _ ->
      advance st;
      go (Ast.Binop (Ast.Inter, acc, p_add st))
    | _ -> acc
  in
  go lhs

and p_add st =
  let lhs = p_mul st in
  let rec go acc =
    match peek st with
    | PLUS, _ ->
      advance st;
      go (Ast.Binop (Ast.Add, acc, p_mul st))
    | MINUS, _ ->
      advance st;
      go (Ast.Binop (Ast.Sub, acc, p_mul st))
    | _ -> acc
  in
  go lhs

and p_mul st =
  let lhs = p_unary st in
  let rec go acc =
    match peek st with
    | STAR, _ ->
      advance st;
      go (Ast.Binop (Ast.Mul, acc, p_unary st))
    | SLASH, _ ->
      advance st;
      go (Ast.Binop (Ast.Div, acc, p_unary st))
    | KMOD, _ ->
      advance st;
      go (Ast.Binop (Ast.Mod, acc, p_unary st))
    | _ -> acc
  in
  go lhs

and p_unary st =
  match peek st with
  | MINUS, _ ->
    advance st;
    Ast.Unop (Ast.Neg, p_unary st)
  | _ -> p_postfix st

and p_postfix st =
  let atom = p_atom st in
  let rec go acc =
    match peek st with
    | DOT, _ ->
      advance st;
      go (Ast.Field (acc, ident st))
    | KAS, _ ->
      advance st;
      go (Ast.AsTag (acc, ident st))
    | _ -> acc
  in
  go atom

and p_atom st =
  match peek st with
  | INT i, _ ->
    advance st;
    Ast.Const (Cobj.Value.Int i)
  | FLOAT f, _ ->
    advance st;
    Ast.Const (Cobj.Value.Float f)
  | STRING s, _ ->
    advance st;
    Ast.Const (Cobj.Value.String s)
  | KTRUE, _ ->
    advance st;
    Ast.vbool true
  | KFALSE, _ ->
    advance st;
    Ast.vbool false
  | KNULL, _ ->
    advance st;
    Ast.Const Cobj.Value.Null
  | IDENT x, _ when peek2 st = BANG ->
    (* variant construction: tag!payload *)
    advance st;
    advance st;
    Ast.VariantE (x, p_unary st)
  | IDENT x, _ ->
    advance st;
    Ast.Var x
  | LPAREN, _ -> p_paren st
  | LBRACE, _ ->
    advance st;
    let es = p_exprs_until st RBRACE in
    expect st RBRACE "expected '}'";
    Ast.SetE es
  | LBRACKET, _ ->
    advance st;
    let es = p_exprs_until st RBRACKET in
    expect st RBRACKET "expected ']'";
    Ast.ListE es
  | KIF, _ ->
    advance st;
    let c = p_expr st in
    expect st KTHEN "expected THEN";
    let a = p_expr st in
    expect st KELSE "expected ELSE";
    let b = p_expr st in
    Ast.If (c, a, b)
  | KSELECT, _ -> p_sfw st
  | KEXISTS, _ -> p_quant st Ast.Exists
  | KFORALL, _ -> p_quant st Ast.Forall
  | KCOUNT, _ -> p_agg st Ast.Count
  | KSUM, _ -> p_agg st Ast.Sum
  | KMIN, _ -> p_agg st Ast.Min
  | KMAX, _ -> p_agg st Ast.Max
  | KAVG, _ -> p_agg st Ast.Avg
  | KUNNEST, _ ->
    advance st;
    expect st LPAREN "expected '(' after UNNEST";
    let e = p_expr st in
    expect st RPAREN "expected ')'";
    Ast.UnnestE e
  | _ -> error st "expected an expression"

(* '(' — either a parenthesized expression or a tuple literal. We parse a
   full expression; a following comma turns it into the first tuple
   component, which must then have the shape [label = value]. Singleton
   tuples need a trailing comma: [(a = 1,)]; [(a = 1)] is a parenthesized
   equality comparison. Field values whose top-level operator binds weaker
   than '=' (AND, OR, WITH) must be parenthesized. *)
and p_paren st =
  advance st;
  match peek st with
  | RPAREN, _ ->
    advance st;
    Ast.TupleE []
  | _ -> (
    let e = p_expr st in
    match peek st with
    | RPAREN, _ ->
      advance st;
      e
    | COMMA, _ -> begin
      advance st;
      match e with
      | Ast.Binop (Ast.Eq, Ast.Var l, value) ->
        let rest = p_tuple_fields st in
        expect st RPAREN "expected ')' to close tuple";
        Ast.TupleE ((l, value) :: rest)
      | _ -> error st "tuple components must have the form label = expr"
    end
    | _ -> error st "expected ',' or ')'")

and p_tuple_fields st =
  match peek st with
  | RPAREN, _ -> []
  | IDENT l, _ when peek2 st = EQ ->
    advance st;
    advance st;
    let e = p_expr st in
    let rest =
      match peek st with
      | COMMA, _ ->
        advance st;
        p_tuple_fields st
      | _ -> []
    in
    (l, e) :: rest
  | _ -> error st "expected 'label = expr' in tuple"

and p_exprs_until st closing =
  if fst (peek st) = closing then []
  else begin
    let e = p_expr st in
    match peek st with
    | COMMA, _ ->
      advance st;
      e :: p_exprs_until st closing
    | _ -> [ e ]
  end

and p_sfw st =
  advance st;
  let select = p_expr st in
  expect st KFROM "expected FROM";
  let rec bindings () =
    let operand = p_postfix st in
    let v = ident st in
    match peek st with
    | COMMA, _ ->
      advance st;
      (v, operand) :: bindings ()
    | _ -> [ (v, operand) ]
  in
  let from = bindings () in
  let where =
    match peek st with
    | KWHERE, _ ->
      advance st;
      Some (p_expr st)
    | _ -> None
  in
  Ast.Sfw { select; from; where }

and p_quant st q =
  advance st;
  let v = ident st in
  expect st KIN "expected IN after quantified variable";
  let s = p_setexpr st in
  expect st LPAREN "expected '(' before quantifier body";
  let p = p_expr st in
  expect st RPAREN "expected ')' after quantifier body";
  Ast.Quant (q, v, s, p)

and p_agg st a =
  advance st;
  expect st LPAREN "expected '(' after aggregate";
  let e = p_expr st in
  expect st RPAREN "expected ')'";
  Ast.Agg (a, e)

let expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = p_expr st in
  (match peek st with
  | EOF, _ -> ()
  | _ -> error st "trailing input");
  e

let expr_result src =
  match expr src with
  | e -> Ok e
  | exception Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "lex error at offset %d: %s" pos msg)

module Internal = struct
  type nonrec state = state

  let make toks = { toks }
  let peek = peek
  let advance = advance
  let parse_expr = p_expr
  let error st msg = error st msg
end
