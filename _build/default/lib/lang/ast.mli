(** Abstract syntax of the TM-like query language.

    The language is an orthogonal SQL extension in the style of the paper's
    TM (and of HDBL): the SELECT, FROM and WHERE positions of an SFW block
    accept arbitrary correctly-typed expressions, including other SFW blocks;
    predicates may use quantifiers, aggregate functions and set comparisons;
    [e WITH v = e'] introduces a local definition (the paper uses WITH to name
    subquery results). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Mem                          (** [e IN s] — set membership ∈ *)
  | Union | Inter | Diff
  | Subset | Subseteq | Supset | Supseteq

type unop = Not | Neg

type agg = Count | Sum | Min | Max | Avg

type quant = Exists | Forall

type expr =
  | Const of Cobj.Value.t
  | Var of string
  | TableRef of string           (** a catalog extension, e.g. EMP *)
  | Field of expr * string       (** [e.l] *)
  | TupleE of (string * expr) list
  | SetE of expr list
  | ListE of expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Agg of agg * expr
  | Quant of quant * string * expr * expr
      (** [Quant (q, v, s, p)] — ∃/∀ [v] ∈ [s] ([p]) *)
  | Let of string * expr * expr
      (** [Let (v, def, body)] — concrete syntax [body WITH v = def] *)
  | UnnestE of expr              (** UNNEST(s) = ⋃{x | x ∈ s} *)
  | If of expr * expr * expr     (** IF c THEN a ELSE b *)
  | VariantE of string * expr    (** construction [tag ! e] *)
  | IsTag of expr * string       (** [e IS tag] — tag test *)
  | AsTag of expr * string       (** [e AS tag] — payload projection;
                                     a run-time error on other tags *)
  | Sfw of sfw

and sfw = {
  select : expr;
  from : (string * expr) list;
      (** [(v, operand)] pairs; later operands may refer to earlier
          variables (dependent iteration, e.g. [FROM DEPT d, d.emps e]) *)
  where : expr option;
}

(** {1 Constructors and helpers} *)

val sfw : ?where:expr -> select:expr -> (string * expr) list -> expr
val vint : int -> expr
val vstr : string -> expr
val vbool : bool -> expr
val empty_set : expr
val path : string -> string list -> expr
(** [path "x" ["a"; "b"]] is [x.a.b]. *)

val conj : expr list -> expr
(** Conjunction; [conj []] is [true]. *)

val disj : expr list -> expr

(** {1 Analysis} *)

module String_set : Set.S with type elt = string

val free_vars : expr -> String_set.t
(** Free variables. [TableRef] names are not variables. Quantifiers, WITH
    and SFW FROM clauses bind. *)

val occurs_free : string -> expr -> bool

val subst : string -> expr -> expr -> expr
(** [subst x e body] — capture-avoiding substitution of [e] for free [x].
    Binders that would capture free variables of [e] are alpha-renamed. *)

val rename_binders_away_from : String_set.t -> expr -> expr
(** Alpha-rename all binders so they avoid the given set (and remain
    pairwise fresh against it). *)

val fresh : String_set.t -> string -> string
(** [fresh avoid base] — [base], or [base'], [base''], … not in [avoid]. *)

val resolve_tables : Cobj.Catalog.t -> expr -> expr
(** Convert free [Var] occurrences whose name is a catalog extension into
    [TableRef]. Bound variables shadow table names. *)

val equal : expr -> expr -> bool
(** Structural equality. *)

val size : expr -> int
(** Number of AST nodes (used by tests and the cost model). *)

val all_vars : expr -> String_set.t
(** Every identifier occurring in the expression, free or bound — for
    callers that must invent globally fresh names. *)
