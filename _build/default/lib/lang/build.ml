type expr = Ast.expr

(* Fresh binder names: a per-process counter keeps names unique within a
   build; operand expressions are additionally scanned so that an embedded
   variable can never be captured. *)
let counter = ref 0

let fresh_name avoid hint =
  incr counter;
  let candidate = Printf.sprintf "%s%d" hint !counter in
  Ast.fresh avoid candidate

let int i = Ast.vint i
let float f = Ast.Const (Cobj.Value.Float f)
let str s = Ast.vstr s
let bool b = Ast.vbool b
let table name = Ast.TableRef name
let value v = Ast.Const v
let tuple fields = Ast.TupleE fields
let set es = Ast.SetE es
let list es = Ast.ListE es
let ( $. ) e l = Ast.Field (e, l)

let binop op a b = Ast.Binop (op, a, b)
let ( =: ) a b = binop Ast.Eq a b
let ( <>: ) a b = binop Ast.Ne a b
let ( <: ) a b = binop Ast.Lt a b
let ( <=: ) a b = binop Ast.Le a b
let ( >: ) a b = binop Ast.Gt a b
let ( >=: ) a b = binop Ast.Ge a b
let ( &&: ) a b = binop Ast.And a b
let ( ||: ) a b = binop Ast.Or a b
let not_ e = Ast.Unop (Ast.Not, e)
let ( +: ) a b = binop Ast.Add a b
let ( -: ) a b = binop Ast.Sub a b
let ( *: ) a b = binop Ast.Mul a b
let ( /: ) a b = binop Ast.Div a b
let ( %: ) a b = binop Ast.Mod a b
let ( @: ) a b = binop Ast.Mem a b
let union a b = binop Ast.Union a b
let inter a b = binop Ast.Inter a b
let diff a b = binop Ast.Diff a b
let subset a b = binop Ast.Subset a b
let subseteq a b = binop Ast.Subseteq a b
let supset a b = binop Ast.Supset a b
let supseteq a b = binop Ast.Supseteq a b
let count e = Ast.Agg (Ast.Count, e)
let sum e = Ast.Agg (Ast.Sum, e)
let min_ e = Ast.Agg (Ast.Min, e)
let max_ e = Ast.Agg (Ast.Max, e)
let avg e = Ast.Agg (Ast.Avg, e)
let unnest e = Ast.UnnestE e

let quant q ?(hint = "v") s body =
  let v = fresh_name (Ast.all_vars s) hint in
  Ast.Quant (q, v, s, body (Ast.Var v))

let exists ?hint s body = quant Ast.Exists ?hint s body
let forall ?hint s body = quant Ast.Forall ?hint s body

let let_ ?(hint = "w") def body =
  let v = fresh_name (Ast.all_vars def) hint in
  Ast.Let (v, def, body (Ast.Var v))

type binding = {
  hint : string;
  operand : expr;
}

let from ?hint operand =
  let hint =
    match hint, operand with
    | Some h, _ -> h
    | None, Ast.TableRef n -> String.lowercase_ascii (String.sub n 0 1)
    | None, _ -> "v"
  in
  { hint; operand }

let select ~from ?where f =
  let avoid =
    List.fold_left
      (fun acc b -> Ast.String_set.union acc (Ast.all_vars b.operand))
      Ast.String_set.empty from
  in
  let bindings =
    List.map (fun b -> (fresh_name avoid b.hint, b.operand)) from
  in
  let vars = List.map (fun (v, _) -> Ast.Var v) bindings in
  let apply name g =
    match g vars with
    | e -> e
    | exception Match_failure _ ->
      invalid_arg
        (Printf.sprintf
           "Lang.Build.select: the %s callback must accept %d binder(s)" name
           (List.length bindings))
  in
  let select_e = apply "select" f in
  let where_e = Option.map (fun w -> apply "where" w) where in
  Ast.Sfw { select = select_e; from = bindings; where = where_e }

let subquery = select

let select1 ~from:b ?where f =
  select
    ~from:[ b ]
    ?where:(Option.map (fun w vars -> w (List.nth vars 0)) where)
    (fun vars -> f (List.nth vars 0))

let select2 ~from:(b1, b2) ?where f =
  select
    ~from:[ b1; b2 ]
    ?where:
      (Option.map (fun w vars -> w (List.nth vars 0) (List.nth vars 1)) where)
    (fun vars -> f (List.nth vars 0) (List.nth vars 1))

let if_ c a b = Ast.If (c, a, b)
let variant tag e = Ast.VariantE (tag, e)
let is_tag e tag = Ast.IsTag (e, tag)
let as_tag e tag = Ast.AsTag (e, tag)
