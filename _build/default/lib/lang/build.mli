(** Combinators for building queries programmatically.

    A thin, capture-aware layer over {!Ast} for library users who construct
    queries in OCaml rather than parsing concrete syntax. Binding forms
    (quantifiers, FROM clauses, WITH) take OCaml functions, so variable
    scoping mirrors host-language scoping:

    {[
      let open Lang.Build in
      select
        ~from:[ from (table "X") "x" ]
        (fun [ x ] -> x $. "id")
        ~where:(fun [ x ] ->
          (x $. "a") @: subquery ~from:[ from (table "Y") "y" ]
            (fun [ y ] -> y $. "a")
            ~where:(fun [ y ] -> (x $. "b") =: (y $. "b")))
    ]}

    The list-of-binders interface is dynamically checked: the callback
    receives exactly as many variables as there are FROM bindings. *)

type expr = Ast.expr

(** {1 Atoms} *)

val int : int -> expr
val float : float -> expr
val str : string -> expr
val bool : bool -> expr
val table : string -> expr
(** A catalog extension (use inside {!from}). *)

val value : Cobj.Value.t -> expr

(** {1 Structure} *)

val tuple : (string * expr) list -> expr
val set : expr list -> expr
val list : expr list -> expr
val ( $. ) : expr -> string -> expr
(** Field projection: [x $. "a"] is [x.a]. *)

(** {1 Operators} *)

val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val not_ : expr -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr

val ( @: ) : expr -> expr -> expr
(** Membership: [e @: s] is [e IN s]. *)

val union : expr -> expr -> expr
val inter : expr -> expr -> expr
val diff : expr -> expr -> expr
val subset : expr -> expr -> expr
val subseteq : expr -> expr -> expr
val supset : expr -> expr -> expr
val supseteq : expr -> expr -> expr

(** {1 Aggregates and set functions} *)

val count : expr -> expr
val sum : expr -> expr
val min_ : expr -> expr
val max_ : expr -> expr
val avg : expr -> expr
val unnest : expr -> expr

(** {1 Binding forms}

    Fresh variable names are derived from the given hints, avoiding capture
    of any name already used in the operand expressions. *)

val exists : ?hint:string -> expr -> (expr -> expr) -> expr
(** [exists s body] is [∃v ∈ s (body v)]. *)

val forall : ?hint:string -> expr -> (expr -> expr) -> expr

val let_ : ?hint:string -> expr -> (expr -> expr) -> expr
(** [let_ def body] is [body v WITH v = def]. *)

type binding
(** One FROM binding. *)

val from : ?hint:string -> expr -> binding
(** [from (table "X")], [from (x $. "emps")], … *)

val select :
  from:binding list ->
  ?where:(expr list -> expr) ->
  (expr list -> expr) ->
  expr
(** [select ~from ~where f] — [f] and [where] receive the bound variables in
    FROM order. Raises [Invalid_argument] if the callbacks are applied to a
    different number of binders than declared — use complete patterns like
    [fun [ x; y ] -> …] (the compiler's partial-match warning is expected
    and can be silenced locally). *)

val subquery :
  from:binding list ->
  ?where:(expr list -> expr) ->
  (expr list -> expr) ->
  expr
(** Alias of {!select} for readability at nested positions. *)

val select1 :
  from:binding -> ?where:(expr -> expr) -> (expr -> expr) -> expr
(** Single-binding convenience: no list patterns needed. *)

val select2 :
  from:binding * binding ->
  ?where:(expr -> expr -> expr) ->
  (expr -> expr -> expr) ->
  expr

(** {1 Conditionals and variants} *)

val if_ : expr -> expr -> expr -> expr
val variant : string -> expr -> expr
(** [variant "circle" (float 1.5)] is [circle!1.5]. *)

val is_tag : expr -> string -> expr
val as_tag : expr -> string -> expr
