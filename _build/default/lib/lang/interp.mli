(** Reference interpreter: naive nested-loop semantics.

    This is the denotational meaning of the language from §3.1 of the paper
    ("the operand expression is evaluated; a variable is iterated over the
    resulting set; for each value of the variable it is determined whether
    the predicate holds, and if so, the result expression is evaluated and
    this value is included in the resulting set"). Correlated subqueries are
    re-evaluated for every outer binding — precisely the nested-loop
    processing the paper sets out to beat. It serves as (a) the semantic
    oracle for all optimizer tests and (b) the naive baseline in benches. *)

exception Undefined of string
(** Raised when an aggregate is undefined: MIN/MAX/AVG of the empty set. *)

val eval : Cobj.Catalog.t -> Cobj.Env.t -> Ast.expr -> Cobj.Value.t
(** Raises [Cobj.Value.Type_error] on dynamic type errors and {!Undefined}
    on undefined aggregates. *)

val run : Cobj.Catalog.t -> Ast.expr -> Cobj.Value.t
(** [eval] with an empty environment (closed, table-resolved queries). *)

val truth : Cobj.Catalog.t -> Cobj.Env.t -> Ast.expr -> bool
(** Evaluate a predicate. An {!Undefined} aggregate makes the predicate
    false rather than failing the query — the partial-function reading
    documented in DESIGN.md (genuine type errors still propagate). *)

(**/**)

(** Value-level primitives shared with the engine's expression compiler —
    guaranteed to match the interpreter's semantics because they {e are}
    the interpreter's semantics. *)
module Prim : sig
  val add : Cobj.Value.t -> Cobj.Value.t -> Cobj.Value.t
  val sub : Cobj.Value.t -> Cobj.Value.t -> Cobj.Value.t
  val mul : Cobj.Value.t -> Cobj.Value.t -> Cobj.Value.t
  val div : Cobj.Value.t -> Cobj.Value.t -> Cobj.Value.t
  val modulo : Cobj.Value.t -> Cobj.Value.t -> Cobj.Value.t
  val aggregate : Ast.agg -> Cobj.Value.t -> Cobj.Value.t
end
