module Value = Cobj.Value
module Env = Cobj.Env

exception Undefined of string

let num_binop op_int op_float a b =
  match a, b with
  | Value.Int x, Value.Int y -> Value.Int (op_int x y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Value.Float (op_float (Value.as_float a) (Value.as_float b))
  | _, _ ->
    Value.type_error "arithmetic on non-numbers %s and %s"
      (Value.to_string a) (Value.to_string b)

let add = num_binop ( + ) ( +. )
let sub = num_binop ( - ) ( -. )
let mul = num_binop ( * ) ( *. )

let div a b =
  match a, b with
  | Value.Int x, Value.Int y ->
    if y = 0 then Value.type_error "division by zero" else Value.Int (x / y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Value.Float (Value.as_float a /. Value.as_float b)
  | _, _ ->
    Value.type_error "division on non-numbers %s and %s" (Value.to_string a)
      (Value.to_string b)

let aggregate agg v =
  let elems = Value.elements v in
  match agg with
  | Ast.Count -> Value.Int (List.length elems)
  | Ast.Sum -> List.fold_left add (Value.Int 0) elems
  | Ast.Min -> begin
    match elems with
    | [] -> raise (Undefined "MIN of empty collection")
    | x :: rest ->
      List.fold_left (fun m y -> if Value.compare y m < 0 then y else m) x rest
  end
  | Ast.Max -> begin
    match elems with
    | [] -> raise (Undefined "MAX of empty collection")
    | x :: rest ->
      List.fold_left (fun m y -> if Value.compare y m > 0 then y else m) x rest
  end
  | Ast.Avg -> begin
    match elems with
    | [] -> raise (Undefined "AVG of empty collection")
    | _ :: _ ->
      let total =
        List.fold_left (fun acc x -> acc +. Value.as_float x) 0. elems
      in
      Value.Float (total /. float_of_int (List.length elems))
  end

let compare_binop op a b =
  let c = Value.compare a b in
  let r =
    match op with
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or
    | Ast.Mem | Ast.Union | Ast.Inter | Ast.Diff | Ast.Subset | Ast.Subseteq
    | Ast.Supset | Ast.Supseteq ->
      Value.type_error "compare_binop: not a comparison"
  in
  Value.Bool r

let rec eval catalog env e =
  let recur = eval catalog in
  match e with
  | Ast.Const v -> v
  | Ast.Var x -> Env.find x env
  | Ast.TableRef name -> begin
    match Cobj.Catalog.find name catalog with
    | Some table -> Cobj.Table.to_value table
    | None -> Value.type_error "unknown extension %s" name
  end
  | Ast.Field (e1, l) -> Value.field l (recur env e1)
  | Ast.TupleE fields ->
    Value.tuple (List.map (fun (l, e1) -> (l, recur env e1)) fields)
  | Ast.SetE es -> Value.set (List.map (recur env) es)
  | Ast.ListE es -> Value.List (List.map (recur env) es)
  | Ast.Unop (Ast.Not, e1) -> Value.Bool (not (Value.as_bool (recur env e1)))
  | Ast.Unop (Ast.Neg, e1) -> sub (Value.Int 0) (recur env e1)
  | Ast.Binop (Ast.And, a, b) ->
    (* Short-circuit, so that e.g. [x.zs <> {} AND MIN(x.zs) > 3] never
       touches the undefined aggregate. *)
    if Value.as_bool (recur env a) then recur env b else Value.Bool false
  | Ast.Binop (Ast.Or, a, b) ->
    if Value.as_bool (recur env a) then Value.Bool true else recur env b
  | Ast.Binop (op, a, b) -> eval_binop catalog env op a b
  | Ast.Agg (agg, e1) -> aggregate agg (recur env e1)
  | Ast.Quant (q, v, s, p) -> begin
    let elems = Value.elements (recur env s) in
    let holds x = Value.as_bool (recur (Env.bind v x env) p) in
    match q with
    | Ast.Exists -> Value.Bool (List.exists holds elems)
    | Ast.Forall -> Value.Bool (List.for_all holds elems)
  end
  | Ast.Let (v, def, body) ->
    let dv = recur env def in
    recur (Env.bind v dv env) body
  | Ast.UnnestE e1 ->
    let sets = Value.elements (recur env e1) in
    List.fold_left Value.set_union (Value.Set []) sets
  | Ast.If (c, a, b) ->
    if Value.as_bool (recur env c) then recur env a else recur env b
  | Ast.VariantE (tag, e1) -> Value.Variant (tag, recur env e1)
  | Ast.IsTag (e1, tag) ->
    Value.Bool (String.equal (Value.variant_tag (recur env e1)) tag)
  | Ast.AsTag (e1, tag) -> Value.variant_payload tag (recur env e1)
  | Ast.Sfw { select; from; where } ->
    (* Nested-loop semantics: extend the environment left to right, filter,
       then map the SELECT expression. *)
    let envs =
      List.fold_left
        (fun envs (v, operand) ->
          List.concat_map
            (fun env' ->
              let elems = Value.elements (recur env' operand) in
              List.map (fun x -> Env.bind v x env') elems)
            envs)
        [ env ] from
    in
    let envs =
      match where with
      | None -> envs
      | Some w -> List.filter (fun env' -> truth_env catalog env' w) envs
    in
    Value.set (List.map (fun env' -> recur env' select) envs)

and eval_binop catalog env op a b =
  let recur = eval catalog env in
  match op with
  | Ast.Add -> add (recur a) (recur b)
  | Ast.Sub -> sub (recur a) (recur b)
  | Ast.Mul -> mul (recur a) (recur b)
  | Ast.Div -> div (recur a) (recur b)
  | Ast.Mod ->
    let x = Value.as_int (recur a) and y = Value.as_int (recur b) in
    if y = 0 then Value.type_error "MOD by zero" else Value.Int (x mod y)
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    compare_binop op (recur a) (recur b)
  | Ast.Mem -> begin
    let x = recur a in
    match recur b with
    | Value.Set _ as s -> Value.Bool (Value.set_mem x s)
    | Value.List elems -> Value.Bool (List.exists (Value.equal x) elems)
    | v -> Value.type_error "IN expects a collection, got %s" (Value.to_string v)
  end
  | Ast.Union -> Value.set_union (recur a) (recur b)
  | Ast.Inter -> Value.set_inter (recur a) (recur b)
  | Ast.Diff -> Value.set_diff (recur a) (recur b)
  | Ast.Subseteq -> Value.Bool (Value.set_subseteq (recur a) (recur b))
  | Ast.Subset -> Value.Bool (Value.set_subset (recur a) (recur b))
  | Ast.Supseteq -> Value.Bool (Value.set_subseteq (recur b) (recur a))
  | Ast.Supset -> Value.Bool (Value.set_subset (recur b) (recur a))
  | Ast.And | Ast.Or -> Value.type_error "eval_binop: And/Or handled above"

and truth_env catalog env p =
  match Value.as_bool (eval catalog env p) with
  | b -> b
  | exception Undefined _ -> false

let truth = truth_env
let run catalog e = eval catalog Env.empty e

module Prim = struct
  let add = add
  let sub = sub
  let mul = mul
  let div = div

  let modulo a b =
    let x = Value.as_int a and y = Value.as_int b in
    if y = 0 then Value.type_error "MOD by zero" else Value.Int (x mod y)

  let aggregate = aggregate
end
