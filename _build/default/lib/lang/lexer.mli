(** Lexer for the TM-like concrete syntax. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KSELECT | KFROM | KWHERE | KWITH
  | KIN | KNOT | KAND | KOR
  | KEXISTS | KFORALL
  | KUNION | KINTERSECT | KEXCEPT
  | KSUBSET | KSUBSETEQ | KSUPSET | KSUPSETEQ
  | KCOUNT | KSUM | KMIN | KMAX | KAVG
  | KUNNEST | KTRUE | KFALSE | KNULL | KMOD
  | KIF | KTHEN | KELSE | KIS | KAS
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | DOT | COLON | SEMI
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH | BANG
  | EOF

exception Lex_error of string * int
(** Message and byte offset. *)

val tokenize : string -> (token * int) list
(** Tokens with their byte offsets, ending in [EOF]. Keywords are
    case-insensitive; identifiers are case-sensitive; [--] starts a
    line comment. *)

val pp_token : token Fmt.t
