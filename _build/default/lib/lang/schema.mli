(** Catalog definition language: declare extensions (tables) textually,
    in the style of the paper's §3 TM class definitions.

    Grammar:
    {v
    defs   ::= def*
    def    ::= TABLE name type key? '=' expr ';'?
             | SORT name type ';'?
             | CLASS name WITH EXTENSION ext (ATTRIBUTES)? type key?
                 '=' expr (END name?)? ';'?
    key    ::= KEY '(' field (',' field)* ')'
    type   ::= INT | FLOAT | STRING | BOOL | ANY | sort-name
             | P type | L type
             | '(' label ':' type (',' label ':' type)* ')'
    v}

    All definition keywords ([TABLE], [SORT], [CLASS], [WITH], [EXTENSION],
    [ATTRIBUTES], [KEY], [END]) are contextual and case-insensitive — except
    [WITH], which is a query-language keyword and is recognized directly.
    A [SORT] names a type for use in later definitions (the paper's
    commonly-used types such as [Address]); a [CLASS] is a table whose
    extension name is given explicitly, mirroring
    [CLASS Employee WITH EXTENSION EMP … END Employee]. The row expression
    after [=] is any closed, set-valued expression of the query language —
    usually a set literal of tuples, but computed contents such as
    [SELECT (i = v, s = {v}) FROM {1, 2, 3} v] work too (each definition
    sees the tables defined before it). Line comments start with [--].

    Example:
    {v
    SORT Address (street : STRING, nr : STRING, city : STRING);

    CLASS Employee WITH EXTENSION EMP ATTRIBUTES
      (name : STRING, address : Address, sal : INT,
       children : P (name : STRING, age : INT))
      KEY (name) =
      { (name = "ada", address = (street = "s1", nr = "1", city = "c1"),
         sal = 100, children = {}) }
    END Employee;
    v} *)

val ctype : string -> (Cobj.Ctype.t, string) result
(** Parse a type expression alone. *)

val catalog : string -> (Cobj.Catalog.t, string) result
(** Parse a sequence of table definitions into a catalog. Row values are
    checked against the declared element type and declared keys are
    verified. Each definition is evaluated against the catalog built so
    far, so later tables may compute their contents from earlier ones. *)

val render : Cobj.Catalog.t -> string
(** Render a catalog as definition-language text. Round trip:
    [catalog (render c)] succeeds and reproduces [c]'s tables exactly
    (names, element types, declared keys, rows) — property-tested. *)
