(** Pretty-printing of expressions.

    [pp] renders re-parseable concrete syntax ([Parser.expr (to_string e)]
    is structurally equal to [e]); [pp_math] renders the paper's mathematical
    notation (∃, ∈, ⊆, ¬, ∧ …) for reports such as the Table 2 bench. *)

val pp : Ast.expr Fmt.t
val to_string : Ast.expr -> string

val pp_math : Ast.expr Fmt.t
val to_math_string : Ast.expr -> string
