type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KSELECT | KFROM | KWHERE | KWITH
  | KIN | KNOT | KAND | KOR
  | KEXISTS | KFORALL
  | KUNION | KINTERSECT | KEXCEPT
  | KSUBSET | KSUBSETEQ | KSUPSET | KSUPSETEQ
  | KCOUNT | KSUM | KMIN | KMAX | KAVG
  | KUNNEST | KTRUE | KFALSE | KNULL | KMOD
  | KIF | KTHEN | KELSE | KIS | KAS
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | DOT | COLON | SEMI
  | EQ | NE | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH | BANG
  | EOF

exception Lex_error of string * int

let keyword s =
  match String.uppercase_ascii s with
  | "SELECT" -> Some KSELECT
  | "FROM" -> Some KFROM
  | "WHERE" -> Some KWHERE
  | "WITH" -> Some KWITH
  | "IN" -> Some KIN
  | "NOT" -> Some KNOT
  | "AND" -> Some KAND
  | "OR" -> Some KOR
  | "EXISTS" -> Some KEXISTS
  | "FORALL" -> Some KFORALL
  | "UNION" -> Some KUNION
  | "INTERSECT" -> Some KINTERSECT
  | "EXCEPT" -> Some KEXCEPT
  | "SUBSET" -> Some KSUBSET
  | "SUBSETEQ" -> Some KSUBSETEQ
  | "SUPSET" -> Some KSUPSET
  | "SUPSETEQ" -> Some KSUPSETEQ
  | "COUNT" -> Some KCOUNT
  | "SUM" -> Some KSUM
  | "MIN" -> Some KMIN
  | "MAX" -> Some KMAX
  | "AVG" -> Some KAVG
  | "UNNEST" -> Some KUNNEST
  | "TRUE" -> Some KTRUE
  | "FALSE" -> Some KFALSE
  | "NULL" -> Some KNULL
  | "MOD" -> Some KMOD
  | "IF" -> Some KIF
  | "THEN" -> Some KTHEN
  | "ELSE" -> Some KELSE
  | "IS" -> Some KIS
  | "AS" -> Some KAS
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit tok pos = toks := (tok, pos) :: !toks in
  let rec skip_line i = if i < n && src.[i] <> '\n' then skip_line (i + 1) else i in
  let rec go i =
    if i >= n then emit EOF n
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '-' && i + 1 < n && src.[i + 1] = '-' then go (skip_line i)
      else if is_ident_start c then begin
        let j = ref (i + 1) in
        while !j < n && is_ident_char src.[!j] do incr j done;
        let word = String.sub src i (!j - i) in
        (match keyword word with
        | Some kw -> emit kw i
        | None -> emit (IDENT word) i);
        go !j
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do incr j done;
        let is_float = ref false in
        if !j + 1 < n && src.[!j] = '.' && is_digit src.[!j + 1] then begin
          is_float := true;
          incr j;
          while !j < n && is_digit src.[!j] do incr j done
        end
        else if
          (* trailing-dot float ("2.") — printed by the pretty-printer; a
             dot followed by an identifier stays a field access *)
          !j < n
          && src.[!j] = '.'
          && (!j + 1 >= n || not (is_ident_start src.[!j + 1]))
        then begin
          is_float := true;
          incr j
        end;
        if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
          let k = ref (!j + 1) in
          if !k < n && (src.[!k] = '+' || src.[!k] = '-') then incr k;
          if !k < n && is_digit src.[!k] then begin
            is_float := true;
            j := !k;
            while !j < n && is_digit src.[!j] do incr j done
          end
        end;
        let text = String.sub src i (!j - i) in
        if !is_float then emit (FLOAT (float_of_string text)) i
        else emit (INT (int_of_string text)) i;
        go !j
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error ("unterminated string", i))
          else if src.[j] = '"' then j + 1
          else if src.[j] = '\\' && j + 1 < n then begin
            (match src.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | other -> raise (Lex_error (Printf.sprintf "bad escape \\%c" other, j)));
            str (j + 2)
          end
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let j = str (i + 1) in
        emit (STRING (Buffer.contents buf)) i;
        go j
      end
      else begin
        let two tok = emit tok i; go (i + 2) in
        let one tok = emit tok i; go (i + 1) in
        match c with
        | '<' when i + 1 < n && src.[i + 1] = '>' -> two NE
        | '<' when i + 1 < n && src.[i + 1] = '=' -> two LE
        | '>' when i + 1 < n && src.[i + 1] = '=' -> two GE
        | '!' when i + 1 < n && src.[i + 1] = '=' -> two NE
        | '!' -> one BANG
        | '<' -> one LT
        | '>' -> one GT
        | '=' -> one EQ
        | '(' -> one LPAREN
        | ')' -> one RPAREN
        | '{' -> one LBRACE
        | '}' -> one RBRACE
        | '[' -> one LBRACKET
        | ']' -> one RBRACKET
        | ',' -> one COMMA
        | ':' -> one COLON
        | ';' -> one SEMI
        | '.' -> one DOT
        | '+' -> one PLUS
        | '-' -> one MINUS
        | '*' -> one STAR
        | '/' -> one SLASH
        | other ->
          raise (Lex_error (Printf.sprintf "unexpected character %C" other, i))
      end
  in
  go 0;
  List.rev !toks

let pp_token ppf tok =
  let s =
    match tok with
    | INT i -> string_of_int i
    | FLOAT f -> string_of_float f
    | STRING s -> Printf.sprintf "%S" s
    | IDENT s -> s
    | KSELECT -> "SELECT" | KFROM -> "FROM" | KWHERE -> "WHERE"
    | KWITH -> "WITH" | KIN -> "IN" | KNOT -> "NOT" | KAND -> "AND"
    | KOR -> "OR" | KEXISTS -> "EXISTS" | KFORALL -> "FORALL"
    | KUNION -> "UNION" | KINTERSECT -> "INTERSECT" | KEXCEPT -> "EXCEPT"
    | KSUBSET -> "SUBSET" | KSUBSETEQ -> "SUBSETEQ" | KSUPSET -> "SUPSET"
    | KSUPSETEQ -> "SUPSETEQ" | KCOUNT -> "COUNT" | KSUM -> "SUM"
    | KMIN -> "MIN" | KMAX -> "MAX" | KAVG -> "AVG" | KUNNEST -> "UNNEST"
    | KTRUE -> "TRUE" | KFALSE -> "FALSE" | KNULL -> "NULL" | KMOD -> "MOD"
    | KIF -> "IF" | KTHEN -> "THEN" | KELSE -> "ELSE" | KIS -> "IS"
    | KAS -> "AS"
    | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
    | LBRACKET -> "[" | RBRACKET -> "]" | COMMA -> "," | DOT -> "."
    | COLON -> ":" | SEMI -> ";"
    | EQ -> "=" | NE -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
    | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
    | BANG -> "!"
    | EOF -> "<eof>"
  in
  Fmt.string ppf s
