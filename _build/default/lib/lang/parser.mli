(** Recursive-descent parser for the TM-like concrete syntax.

    Grammar sketch (low to high precedence):
    {v
    expr     ::= orexpr (WITH ident '=' orexpr)*
    orexpr   ::= andexpr (OR andexpr)*
    andexpr  ::= notexpr (AND notexpr)*
    notexpr  ::= NOT notexpr | cmp
    cmp      ::= setexpr (cmpop setexpr)?          -- non-associative
    cmpop    ::= '=' '<>' '<' '<=' '>' '>=' IN | NOT IN
               | SUBSET | SUBSETEQ | SUPSET | SUPSETEQ
    setexpr  ::= inter ((UNION | EXCEPT) inter)*
    inter    ::= addexpr (INTERSECT addexpr)*
    addexpr  ::= mulexpr (('+' | '-') mulexpr)*
    mulexpr  ::= unary (('*' | '/' | MOD) unary)*
    unary    ::= '-' unary | postfix
    postfix  ::= atom ('.' ident)*
    atom     ::= literal | ident | '(' expr ')' | tuple | '{' exprs '}'
               | '[' exprs ']' | sfw | quant | agg '(' expr ')'
               | UNNEST '(' expr ')'
    tuple    ::= '(' ident '=' expr (',' ident '=' expr)* ','? ')'
    sfw      ::= SELECT expr FROM postfix ident (',' postfix ident)*
                 (WHERE expr)?
    quant    ::= (EXISTS | FORALL) ident IN setexpr '(' expr ')'
    v}

    Ambiguity: ['(' ident '=' expr ')'] is parsed as a parenthesized equality
    comparison; singleton tuples need a trailing comma: [(a = 1,)]. *)

exception Parse_error of string * int
(** Message and byte offset in the source. *)

val expr : string -> Ast.expr
(** Parse a complete expression (must consume all input). *)

val expr_result : string -> (Ast.expr, string) result
(** Like {!expr} but returns the error message instead of raising. *)

(**/**)

(** Internal entry points for embedding the expression parser into other
    grammars (used by {!Schema}). *)
module Internal : sig
  type state

  val make : (Lexer.token * int) list -> state
  val peek : state -> Lexer.token * int
  val advance : state -> unit
  val parse_expr : state -> Ast.expr
  val error : state -> string -> 'a
end
