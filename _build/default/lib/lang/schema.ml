module Ctype = Cobj.Ctype
module Value = Cobj.Value
module I = Parser.Internal

type env = {
  sorts : (string * Ctype.t) list;  (* named types, most recent first *)
  catalog : Cobj.Catalog.t;
}

let empty_env = { sorts = []; catalog = Cobj.Catalog.empty }

(* Contextual (case-insensitive) keyword check on an identifier token. *)
let is_word st word =
  match I.peek st with
  | Lexer.IDENT x, _ -> String.uppercase_ascii x = word
  | _ -> false

let expect_word st word =
  if is_word st word then I.advance st
  else I.error st (Printf.sprintf "expected %s" word)

let ident st =
  match I.peek st with
  | Lexer.IDENT x, _ ->
    I.advance st;
    x
  | _ -> I.error st "expected an identifier"

let expect st tok what =
  if fst (I.peek st) = tok then I.advance st
  else I.error st (Printf.sprintf "expected %s" what)

let skip_semi st =
  match I.peek st with
  | Lexer.SEMI, _ -> I.advance st
  | _ -> ()

let rec p_type env st =
  match I.peek st with
  | Lexer.IDENT x, _ -> begin
    match String.uppercase_ascii x with
    | "INT" ->
      I.advance st;
      Ctype.TInt
    | "FLOAT" ->
      I.advance st;
      Ctype.TFloat
    | "STRING" ->
      I.advance st;
      Ctype.TString
    | "BOOL" ->
      I.advance st;
      Ctype.TBool
    | "ANY" ->
      I.advance st;
      Ctype.TAny
    | "P" ->
      I.advance st;
      Ctype.TSet (p_type env st)
    | "L" ->
      I.advance st;
      Ctype.TList (p_type env st)
    | "V" -> begin
      I.advance st;
      (* V (tag : type, …) — a variant type *)
      match I.peek st with
      | Lexer.LPAREN, _ -> begin
        match p_type env st with
        | Ctype.TTuple cases -> Ctype.tvariant cases
        | _ -> I.error st "V expects (tag : type, ...)"
      end
      | _ -> I.error st "V expects (tag : type, ...)"
    end
    | _ -> begin
      (* a sort name, matched case-sensitively *)
      match List.assoc_opt x env.sorts with
      | Some t ->
        I.advance st;
        t
      | None -> I.error st (Printf.sprintf "unknown type or sort %s" x)
    end
  end
  | Lexer.LPAREN, _ ->
    I.advance st;
    let rec fields () =
      let l = ident st in
      expect st Lexer.COLON "':' after field label";
      let t = p_type env st in
      match I.peek st with
      | Lexer.COMMA, _ ->
        I.advance st;
        (l, t) :: fields ()
      | _ -> [ (l, t) ]
    in
    let fs = fields () in
    expect st Lexer.RPAREN "')' after tuple type";
    Ctype.ttuple fs
  | _ -> I.error st "expected a type"

let p_key st =
  if is_word st "KEY" then begin
    I.advance st;
    expect st Lexer.LPAREN "'(' after KEY";
    let rec fields () =
      let f = ident st in
      match I.peek st with
      | Lexer.COMMA, _ ->
        I.advance st;
        f :: fields ()
      | _ -> [ f ]
    in
    let fs = fields () in
    expect st Lexer.RPAREN "')' after key fields";
    Some fs
  end
  else None

(* Contents of a table/class: the element type, an optional key, '=' and a
   row expression evaluated against the catalog built so far. *)
let p_contents env st ~name =
  let elt = p_type env st in
  let key = p_key st in
  expect st Lexer.EQ "'=' before table contents";
  let rows_expr = I.parse_expr st in
  let resolved = Ast.resolve_tables env.catalog rows_expr in
  let rows_value = Interp.run env.catalog resolved in
  let rows = Value.elements rows_value in
  Cobj.Table.create ?key ~name ~elt rows

let p_table env st =
  expect_word st "TABLE";
  let name = ident st in
  let table = p_contents env st ~name in
  skip_semi st;
  { env with catalog = Cobj.Catalog.add table env.catalog }

let p_sort env st =
  expect_word st "SORT";
  let name = ident st in
  let t = p_type env st in
  skip_semi st;
  { env with sorts = (name, t) :: env.sorts }

(* CLASS name WITH EXTENSION ext (ATTRIBUTES)? type key? '=' expr
   (END name?)? — the paper's §3.1 concrete syntax; WITH is a query-language
   keyword so it is matched as a token, the rest contextually. *)
let p_class env st =
  expect_word st "CLASS";
  let class_name = ident st in
  expect st Lexer.KWITH "WITH after the class name";
  expect_word st "EXTENSION";
  let ext = ident st in
  if is_word st "ATTRIBUTES" then I.advance st;
  let table = p_contents env st ~name:ext in
  if is_word st "END" then begin
    I.advance st;
    match I.peek st with
    | Lexer.IDENT x, _ when String.equal x class_name -> I.advance st
    | _ -> ()
  end;
  skip_semi st;
  { env with catalog = Cobj.Catalog.add table env.catalog }

let parse_defs st =
  let rec go env =
    match I.peek st with
    | Lexer.EOF, _ -> env.catalog
    | _ ->
      if is_word st "TABLE" then go (p_table env st)
      else if is_word st "SORT" then go (p_sort env st)
      else if is_word st "CLASS" then go (p_class env st)
      else I.error st "expected TABLE, SORT or CLASS"
  in
  go empty_env

let wrap f =
  match f () with
  | v -> Ok v
  | exception Parser.Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
  | exception Value.Type_error msg -> Error ("type error: " ^ msg)
  | exception Interp.Undefined msg -> Error ("undefined: " ^ msg)
  | exception Invalid_argument msg -> Error msg

let ctype src =
  wrap (fun () ->
      let st = I.make (Lexer.tokenize src) in
      let t = p_type empty_env st in
      match I.peek st with
      | Lexer.EOF, _ -> t
      | _ -> I.error st "trailing input after type")

let catalog src =
  wrap (fun () ->
      let st = I.make (Lexer.tokenize src) in
      parse_defs st)

let render_type = Cobj.Ctype.to_string

let render cat =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun table ->
      let name = Cobj.Table.name table in
      Fmt.pf ppf "@[<v 2>TABLE %s %s" name
        (render_type (Cobj.Table.elt table));
      (match Cobj.Table.key table with
      | Some fields -> Fmt.pf ppf " KEY (%s)" (String.concat ", " fields)
      | None -> ());
      Fmt.pf ppf " =@ ";
      (match Cobj.Table.rows table with
      | [] -> Fmt.pf ppf "{}"
      | rows ->
        Fmt.pf ppf "{@[<v>%a@]}"
          (Fmt.list ~sep:(Fmt.any ",@ ") Cobj.Value.pp)
          rows);
      Fmt.pf ppf ";@]@.@.")
    (Cobj.Catalog.tables cat);
  Format.pp_print_flush ppf ();
  Buffer.contents buf
