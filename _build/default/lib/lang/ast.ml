type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Mem
  | Union | Inter | Diff
  | Subset | Subseteq | Supset | Supseteq

type unop = Not | Neg

type agg = Count | Sum | Min | Max | Avg

type quant = Exists | Forall

type expr =
  | Const of Cobj.Value.t
  | Var of string
  | TableRef of string
  | Field of expr * string
  | TupleE of (string * expr) list
  | SetE of expr list
  | ListE of expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Agg of agg * expr
  | Quant of quant * string * expr * expr
  | Let of string * expr * expr
  | UnnestE of expr
  | If of expr * expr * expr
  | VariantE of string * expr
  | IsTag of expr * string
  | AsTag of expr * string
  | Sfw of sfw

and sfw = {
  select : expr;
  from : (string * expr) list;
  where : expr option;
}

let sfw ?where ~select from = Sfw { select; from; where }
let vint i = Const (Cobj.Value.Int i)
let vstr s = Const (Cobj.Value.String s)
let vbool b = Const (Cobj.Value.Bool b)
let empty_set = SetE []
let path v fields = List.fold_left (fun e f -> Field (e, f)) (Var v) fields

let conj = function
  | [] -> vbool true
  | e :: rest -> List.fold_left (fun acc p -> Binop (And, acc, p)) e rest

let disj = function
  | [] -> vbool false
  | e :: rest -> List.fold_left (fun acc p -> Binop (Or, acc, p)) e rest

module String_set = Set.Make (String)

let rec free_vars e =
  match e with
  | Const _ | TableRef _ -> String_set.empty
  | Var x -> String_set.singleton x
  | Field (e, _) | Unop (_, e) | Agg (_, e) | UnnestE e
  | VariantE (_, e) | IsTag (e, _) | AsTag (e, _) ->
    free_vars e
  | If (c, a, b) ->
    String_set.union (free_vars c) (String_set.union (free_vars a) (free_vars b))
  | TupleE fields ->
    List.fold_left
      (fun acc (_, e) -> String_set.union acc (free_vars e))
      String_set.empty fields
  | SetE es | ListE es ->
    List.fold_left
      (fun acc e -> String_set.union acc (free_vars e))
      String_set.empty es
  | Binop (_, a, b) -> String_set.union (free_vars a) (free_vars b)
  | Quant (_, v, s, p) ->
    String_set.union (free_vars s) (String_set.remove v (free_vars p))
  | Let (v, def, body) ->
    String_set.union (free_vars def) (String_set.remove v (free_vars body))
  | Sfw { select; from; where } ->
    (* FROM binders scope over later operands, SELECT and WHERE. *)
    let rec go bound acc = function
      | [] ->
        let inner =
          match where with
          | None -> free_vars select
          | Some w -> String_set.union (free_vars select) (free_vars w)
        in
        String_set.union acc (String_set.diff inner bound)
      | (v, operand) :: rest ->
        let acc =
          String_set.union acc (String_set.diff (free_vars operand) bound)
        in
        go (String_set.add v bound) acc rest
    in
    go String_set.empty String_set.empty from

let occurs_free x e = String_set.mem x (free_vars e)

let fresh avoid base =
  let rec go name = if String_set.mem name avoid then go (name ^ "'") else name in
  go base

(* Capture-avoiding substitution. When descending under a binder [v]:
   - if [v = x], stop (x is shadowed);
   - if [v] occurs free in the replacement, alpha-rename [v]. *)
let rec subst x replacement e =
  let fv_repl = free_vars replacement in
  let sub = subst x replacement in
  (* Rename binder [v] of [body] if it would capture; returns binder+body. *)
  let under_binder v body =
    if String.equal v x then (v, body)
    else if String_set.mem v fv_repl then begin
      let avoid =
        String_set.union fv_repl
          (String_set.union (free_vars body) (String_set.singleton x))
      in
      let v' = fresh avoid v in
      (v', sub (subst v (Var v') body))
    end
    else (v, sub body)
  in
  match e with
  | Var y -> if String.equal x y then replacement else e
  | Const _ | TableRef _ -> e
  | Field (e1, l) -> Field (sub e1, l)
  | TupleE fields -> TupleE (List.map (fun (l, e1) -> (l, sub e1)) fields)
  | SetE es -> SetE (List.map sub es)
  | ListE es -> ListE (List.map sub es)
  | Unop (op, e1) -> Unop (op, sub e1)
  | Binop (op, a, b) -> Binop (op, sub a, sub b)
  | Agg (a, e1) -> Agg (a, sub e1)
  | UnnestE e1 -> UnnestE (sub e1)
  | If (c, a, b) -> If (sub c, sub a, sub b)
  | VariantE (tag, e1) -> VariantE (tag, sub e1)
  | IsTag (e1, tag) -> IsTag (sub e1, tag)
  | AsTag (e1, tag) -> AsTag (sub e1, tag)
  | Quant (q, v, s, p) ->
    let s = sub s in
    let v, p = under_binder v p in
    Quant (q, v, s, p)
  | Let (v, def, body) ->
    let def = sub def in
    let v, body = under_binder v body in
    Let (v, def, body)
  | Sfw { select; from; where } ->
    (* Sequential binders: substitute in each operand, renaming binders as
       needed; once a binder equals [x], later positions are shadowed. *)
    let rec go from_acc select where = function
      | [] ->
        let select = sub select in
        let where = Option.map sub where in
        Sfw { select; from = List.rev from_acc; where }
      | (v, operand) :: rest ->
        let operand = sub operand in
        if String.equal v x then
          Sfw
            {
              select;
              from = List.rev_append from_acc ((v, operand) :: rest);
              where;
            }
        else if String_set.mem v fv_repl then begin
          let avoid =
            String_set.union fv_repl
              (String_set.add x
                 (free_vars (Sfw { select; from = rest; where })))
          in
          let v' = fresh avoid v in
          let rn e = subst v (Var v') e in
          let rest = List.map (fun (w, op) -> (w, rn op)) rest in
          (* A later FROM binder equal to [v] would have shadowed it; the
             uniform rename above is still correct because [rn] respects
             shadowing. *)
          go ((v', operand) :: from_acc) (rn select) (Option.map rn where)
            rest
        end
        else go ((v, operand) :: from_acc) select where rest
    in
    go [] select where from

let rec rename_binders_away_from avoid e =
  let ren = rename_binders_away_from avoid in
  match e with
  | Const _ | Var _ | TableRef _ -> e
  | Field (e1, l) -> Field (ren e1, l)
  | TupleE fields -> TupleE (List.map (fun (l, e1) -> (l, ren e1)) fields)
  | SetE es -> SetE (List.map ren es)
  | ListE es -> ListE (List.map ren es)
  | Unop (op, e1) -> Unop (op, ren e1)
  | Binop (op, a, b) -> Binop (op, ren a, ren b)
  | Agg (a, e1) -> Agg (a, ren e1)
  | UnnestE e1 -> UnnestE (ren e1)
  | If (c, a, b) -> If (ren c, ren a, ren b)
  | VariantE (tag, e1) -> VariantE (tag, ren e1)
  | IsTag (e1, tag) -> IsTag (ren e1, tag)
  | AsTag (e1, tag) -> AsTag (ren e1, tag)
  | Quant (q, v, s, p) ->
    let s = ren s in
    if String_set.mem v avoid then begin
      let v' = fresh (String_set.union avoid (free_vars p)) v in
      Quant (q, v', s, ren (subst v (Var v') p))
    end
    else Quant (q, v, s, ren p)
  | Let (v, def, body) ->
    let def = ren def in
    if String_set.mem v avoid then begin
      let v' = fresh (String_set.union avoid (free_vars body)) v in
      Let (v', def, ren (subst v (Var v') body))
    end
    else Let (v, def, ren body)
  | Sfw { select; from; where } ->
    let rec go from_acc select where = function
      | [] ->
        Sfw
          {
            select = ren select;
            from = List.rev from_acc;
            where = Option.map ren where;
          }
      | (v, operand) :: rest ->
        let operand = ren operand in
        if String_set.mem v avoid then begin
          let fv_rest =
            free_vars (Sfw { select; from = rest; where })
          in
          let v' = fresh (String_set.union avoid fv_rest) v in
          let rn e = subst v (Var v') e in
          let rest = List.map (fun (w, op) -> (w, rn op)) rest in
          go ((v', operand) :: from_acc) (rn select) (Option.map rn where)
            rest
        end
        else go ((v, operand) :: from_acc) select where rest
    in
    go [] select where from

let resolve_tables catalog e =
  let is_table x = Cobj.Catalog.mem x catalog in
  let rec res bound e =
    match e with
    | Var x when (not (String_set.mem x bound)) && is_table x -> TableRef x
    | Var _ | Const _ | TableRef _ -> e
    | Field (e1, l) -> Field (res bound e1, l)
    | TupleE fields -> TupleE (List.map (fun (l, e1) -> (l, res bound e1)) fields)
    | SetE es -> SetE (List.map (res bound) es)
    | ListE es -> ListE (List.map (res bound) es)
    | Unop (op, e1) -> Unop (op, res bound e1)
    | Binop (op, a, b) -> Binop (op, res bound a, res bound b)
    | Agg (a, e1) -> Agg (a, res bound e1)
    | UnnestE e1 -> UnnestE (res bound e1)
    | If (c, a, b) -> If (res bound c, res bound a, res bound b)
    | VariantE (tag, e1) -> VariantE (tag, res bound e1)
    | IsTag (e1, tag) -> IsTag (res bound e1, tag)
    | AsTag (e1, tag) -> AsTag (res bound e1, tag)
    | Quant (q, v, s, p) ->
      Quant (q, v, res bound s, res (String_set.add v bound) p)
    | Let (v, def, body) ->
      Let (v, res bound def, res (String_set.add v bound) body)
    | Sfw { select; from; where } ->
      let bound', from =
        List.fold_left
          (fun (bound, acc) (v, operand) ->
            (String_set.add v bound, (v, res bound operand) :: acc))
          (bound, []) from
      in
      let from = List.rev from in
      Sfw
        {
          select = res bound' select;
          from;
          where = Option.map (res bound') where;
        }
  in
  res String_set.empty e

let rec equal a b =
  match a, b with
  | Const x, Const y -> Cobj.Value.equal x y
  | Var x, Var y | TableRef x, TableRef y -> String.equal x y
  | Field (e1, l1), Field (e2, l2) -> String.equal l1 l2 && equal e1 e2
  | TupleE xs, TupleE ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (l1, x) (l2, y) -> String.equal l1 l2 && equal x y)
         xs ys
  | SetE xs, SetE ys | ListE xs, ListE ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Unop (o1, x), Unop (o2, y) -> o1 = o2 && equal x y
  | Binop (o1, x1, y1), Binop (o2, x2, y2) ->
    o1 = o2 && equal x1 x2 && equal y1 y2
  | Agg (a1, x), Agg (a2, y) -> a1 = a2 && equal x y
  | Quant (q1, v1, s1, p1), Quant (q2, v2, s2, p2) ->
    q1 = q2 && String.equal v1 v2 && equal s1 s2 && equal p1 p2
  | Let (v1, d1, b1), Let (v2, d2, b2) ->
    String.equal v1 v2 && equal d1 d2 && equal b1 b2
  | UnnestE x, UnnestE y -> equal x y
  | If (c1, a1, b1), If (c2, a2, b2) -> equal c1 c2 && equal a1 a2 && equal b1 b2
  | VariantE (t1, x), VariantE (t2, y) -> String.equal t1 t2 && equal x y
  | IsTag (x, t1), IsTag (y, t2) | AsTag (x, t1), AsTag (y, t2) ->
    String.equal t1 t2 && equal x y
  | Sfw s1, Sfw s2 ->
    equal s1.select s2.select
    && List.length s1.from = List.length s2.from
    && List.for_all2
         (fun (v1, e1) (v2, e2) -> String.equal v1 v2 && equal e1 e2)
         s1.from s2.from
    && Option.equal equal s1.where s2.where
  | ( ( Const _ | Var _ | TableRef _ | Field _ | TupleE _ | SetE _ | ListE _
      | Unop _ | Binop _ | Agg _ | Quant _ | Let _ | UnnestE _ | If _
      | VariantE _ | IsTag _ | AsTag _ | Sfw _ ),
      _ ) ->
    false

let rec size e =
  match e with
  | Const _ | Var _ | TableRef _ -> 1
  | Field (e1, _) | Unop (_, e1) | Agg (_, e1) | UnnestE e1
  | VariantE (_, e1) | IsTag (e1, _) | AsTag (e1, _) ->
    1 + size e1
  | If (c, a, b) -> 1 + size c + size a + size b
  | TupleE fields ->
    List.fold_left (fun acc (_, e1) -> acc + size e1) 1 fields
  | SetE es | ListE es -> List.fold_left (fun acc e1 -> acc + size e1) 1 es
  | Binop (_, a, b) -> 1 + size a + size b
  | Quant (_, _, s, p) -> 1 + size s + size p
  | Let (_, d, b) -> 1 + size d + size b
  | Sfw { select; from; where } ->
    let w = match where with None -> 0 | Some w -> size w in
    List.fold_left (fun acc (_, e1) -> acc + size e1) (1 + size select + w) from

let rec all_vars_acc acc e =
  match e with
  | Const _ | TableRef _ -> acc
  | Var x -> String_set.add x acc
  | Field (e1, _) | Unop (_, e1) | Agg (_, e1) | UnnestE e1
  | VariantE (_, e1) | IsTag (e1, _) | AsTag (e1, _) ->
    all_vars_acc acc e1
  | If (c, a, b) -> all_vars_acc (all_vars_acc (all_vars_acc acc c) a) b
  | TupleE fields ->
    List.fold_left (fun acc (_, e1) -> all_vars_acc acc e1) acc fields
  | SetE es | ListE es -> List.fold_left all_vars_acc acc es
  | Binop (_, a, b) -> all_vars_acc (all_vars_acc acc a) b
  | Quant (_, v, s, p) ->
    all_vars_acc (all_vars_acc (String_set.add v acc) s) p
  | Let (v, d, b) -> all_vars_acc (all_vars_acc (String_set.add v acc) d) b
  | Sfw { select; from; where } ->
    let acc = all_vars_acc acc select in
    let acc =
      List.fold_left
        (fun acc (v, op) -> all_vars_acc (String_set.add v acc) op)
        acc from
    in
    Option.fold ~none:acc ~some:(all_vars_acc acc) where

let all_vars e = all_vars_acc String_set.empty e
