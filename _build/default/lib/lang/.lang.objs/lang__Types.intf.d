lib/lang/types.mli: Ast Cobj Fmt
