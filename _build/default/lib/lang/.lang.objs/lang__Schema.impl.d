lib/lang/schema.ml: Ast Buffer Cobj Fmt Format Interp Lexer List Parser Printf String
