lib/lang/parser.ml: Ast Cobj Fmt Lexer Printf
