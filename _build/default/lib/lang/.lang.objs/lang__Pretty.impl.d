lib/lang/pretty.ml: Ast Cobj Fmt String
