lib/lang/schema.mli: Cobj
