lib/lang/interp.ml: Ast Cobj List String
