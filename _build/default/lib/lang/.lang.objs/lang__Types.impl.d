lib/lang/types.ml: Ast Cobj Fmt Format List Option Pretty
