lib/lang/interp.mli: Ast Cobj
