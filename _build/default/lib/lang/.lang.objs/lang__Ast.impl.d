lib/lang/ast.ml: Cobj List Option Set String
