lib/lang/build.ml: Ast Cobj List Option Printf String
