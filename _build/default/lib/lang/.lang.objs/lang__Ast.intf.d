lib/lang/ast.mli: Cobj Set
