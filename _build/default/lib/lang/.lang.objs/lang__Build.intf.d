lib/lang/build.mli: Ast Cobj
