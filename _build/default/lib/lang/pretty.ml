open Ast

(* Precedence levels, mirroring the parser (higher binds tighter). *)
let prec_with = 0
let prec_or = 1
let prec_and = 2
let prec_not = 3
let prec_cmp = 4
let prec_union = 5
let prec_inter = 6
let prec_add = 7
let prec_mul = 8
let prec_neg = 9
let prec_postfix = 10
let prec_atom = 11

let binop_prec = function
  | Or -> prec_or
  | And -> prec_and
  | Eq | Ne | Lt | Le | Gt | Ge | Mem | Subset | Subseteq | Supset | Supseteq
    -> prec_cmp
  | Union | Diff -> prec_union
  | Inter -> prec_inter
  | Add | Sub -> prec_add
  | Mul | Div | Mod -> prec_mul

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "MOD"
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR" | Mem -> "IN"
  | Union -> "UNION" | Inter -> "INTERSECT" | Diff -> "EXCEPT"
  | Subset -> "SUBSET" | Subseteq -> "SUBSETEQ"
  | Supset -> "SUPSET" | Supseteq -> "SUPSETEQ"

let binop_math = function
  | Add -> "+" | Sub -> "-" | Mul -> "·" | Div -> "/" | Mod -> "mod"
  | Eq -> "=" | Ne -> "≠" | Lt -> "<" | Le -> "≤" | Gt -> ">" | Ge -> "≥"
  | And -> "∧" | Or -> "∨" | Mem -> "∈"
  | Union -> "∪" | Inter -> "∩" | Diff -> "∖"
  | Subset -> "⊂" | Subseteq -> "⊆" | Supset -> "⊃" | Supseteq -> "⊇"

let agg_name = function
  | Count -> "COUNT" | Sum -> "SUM" | Min -> "MIN" | Max -> "MAX" | Avg -> "AVG"

(* Comparison operators are non-associative in the grammar: operands of a
   comparison must be printed strictly tighter. Left-associative operators
   print the left operand at their own level and the right operand tighter. *)
let rec pp_prec ctx ppf e =
  let parens_if cond body =
    if cond then Fmt.pf ppf "(%t)" body else body ppf
  in
  match e with
  | Const v ->
    (* a negative numeric literal prints with a leading minus, which only
       parses at unary level — protect it in tighter contexts *)
    let negative =
      match v with
      | Cobj.Value.Int n -> n < 0
      | Cobj.Value.Float f -> f < 0.0
      | _ -> false
    in
    parens_if (negative && prec_neg < ctx) (fun ppf -> Cobj.Value.pp ppf v)
  | Var x | TableRef x -> Fmt.string ppf x
  | Field (e1, l) ->
    parens_if (prec_postfix < ctx) (fun ppf ->
        Fmt.pf ppf "%a.%s" (pp_prec prec_postfix) e1 l)
  | TupleE [] -> Fmt.string ppf "()"
  | TupleE [ (l, v) ] ->
    Fmt.pf ppf "(@[%s = %a,@])" l (pp_prec (prec_cmp + 1)) v
  | TupleE fields ->
    Fmt.pf ppf "(@[%a@])"
      (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (l, v) ->
           Fmt.pf ppf "%s = %a" l (pp_prec (prec_cmp + 1)) v))
      fields
  | SetE es ->
    (* elements print at OR level: an unparenthesized SFW or WITH would
       swallow the separating comma on reparse *)
    Fmt.pf ppf "{@[%a@]}"
      (Fmt.list ~sep:(Fmt.any ",@ ") (pp_prec prec_or))
      es
  | ListE es ->
    Fmt.pf ppf "[@[%a@]]"
      (Fmt.list ~sep:(Fmt.any ",@ ") (pp_prec prec_or))
      es
  | Unop (Not, e1) ->
    parens_if (prec_not < ctx) (fun ppf ->
        Fmt.pf ppf "NOT %a" (pp_prec prec_not) e1)
  | Unop (Neg, e1) ->
    (* keep a double negation from printing as "--", the comment marker *)
    let starts_negative =
      match e1 with
      | Unop (Neg, _) -> true
      | Const (Cobj.Value.Int n) -> n < 0
      | Const (Cobj.Value.Float f) -> f < 0.0
      | _ -> false
    in
    parens_if (prec_neg < ctx) (fun ppf ->
        if starts_negative then
          Fmt.pf ppf "-(%a)" (pp_prec prec_with) e1
        else Fmt.pf ppf "-%a" (pp_prec prec_neg) e1)
  | Binop (op, a, b) ->
    let p = binop_prec op in
    let right_ctx = p + 1 in
    let left_ctx = if p = prec_cmp then p + 1 else p in
    parens_if (p < ctx) (fun ppf ->
        Fmt.pf ppf "@[%a %s@ %a@]" (pp_prec left_ctx) a (binop_name op)
          (pp_prec right_ctx) b)
  | Agg (a, e1) -> Fmt.pf ppf "%s(@[%a@])" (agg_name a) (pp_prec prec_with) e1
  | UnnestE e1 -> Fmt.pf ppf "UNNEST(@[%a@])" (pp_prec prec_with) e1
  | If (c, a, b) ->
    (* the ELSE branch extends greedily: protect in any tighter context *)
    parens_if (prec_with < ctx) (fun ppf ->
        Fmt.pf ppf "@[IF %a@ THEN %a@ ELSE %a@]" (pp_prec prec_or) c
          (pp_prec prec_or) a (pp_prec prec_with) b)
  | VariantE (tag, e1) ->
    (* prefix construct swallowing unary level: protect under postfix *)
    parens_if (prec_neg < ctx) (fun ppf ->
        Fmt.pf ppf "%s!%a" tag (pp_prec prec_neg) e1)
  | IsTag (e1, tag) ->
    parens_if (prec_cmp < ctx) (fun ppf ->
        Fmt.pf ppf "%a IS %s" (pp_prec (prec_cmp + 1)) e1 tag)
  | AsTag (e1, tag) ->
    parens_if (prec_postfix < ctx) (fun ppf ->
        Fmt.pf ppf "%a AS %s" (pp_prec prec_postfix) e1 tag)
  | Quant (q, v, s, p) ->
    let kw = match q with Exists -> "EXISTS" | Forall -> "FORALL" in
    parens_if (prec_atom < ctx) (fun ppf ->
        Fmt.pf ppf "@[%s %s IN %a@ (%a)@]" kw v (pp_prec prec_union) s
          (pp_prec prec_with) p)
  | Let (v, def, body) ->
    parens_if (prec_with < ctx) (fun ppf ->
        Fmt.pf ppf "@[%a@ WITH %s = %a@]" (pp_prec prec_or) body v
          (pp_prec prec_or) def)
  | Sfw { select; from; where } ->
    (* An SFW block extends greedily to the right (its WHERE would swallow
       a following conjunct), so parenthesize in any non-top context. *)
    parens_if (prec_with < ctx) (fun ppf ->
        Fmt.pf ppf "@[<hv>SELECT %a@ FROM %a%a@]" (pp_prec prec_with) select
          (Fmt.list ~sep:(Fmt.any ",@ ") pp_from_binding)
          from pp_where where)

and pp_from_binding ppf (v, operand) =
  (* the parser reads FROM operands at postfix level; anything weaker — and
     negative literals, whose minus sign is a separate token — needs parens *)
  let needs_parens =
    match operand with
    | Var _ | TableRef _ | Field _ | Const _ | AsTag _ -> false
    | TupleE _ | SetE _ | ListE _ | Unop _ | Binop _ | Agg _ | Quant _
    | Let _ | UnnestE _ | If _ | VariantE _ | IsTag _ | Sfw _ ->
      true
  in
  if needs_parens then
    Fmt.pf ppf "(%a) %s" (pp_prec prec_with) operand v
  else Fmt.pf ppf "%a %s" (pp_prec prec_postfix) operand v

and pp_where ppf = function
  | None -> ()
  | Some w -> Fmt.pf ppf "@ WHERE %a" (pp_prec prec_with) w

let pp ppf e = pp_prec prec_with ppf e
let to_string e = Fmt.str "@[%a@]" pp e

(* Mathematical notation (not re-parseable). *)
let rec pp_math_prec ctx ppf e =
  let parens_if cond body =
    if cond then Fmt.pf ppf "(%t)" body else body ppf
  in
  match e with
  | Const (Cobj.Value.Set []) -> Fmt.string ppf "∅"
  | Const v -> Cobj.Value.pp ppf v
  | Var x | TableRef x -> Fmt.string ppf x
  | Field (e1, l) -> Fmt.pf ppf "%a.%s" (pp_math_prec prec_postfix) e1 l
  | TupleE fields ->
    Fmt.pf ppf "⟨%a⟩"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (l, v) ->
           Fmt.pf ppf "%s = %a" l (pp_math_prec prec_with) v))
      fields
  | SetE [] -> Fmt.string ppf "∅"
  | SetE es ->
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:(Fmt.any ", ") (pp_math_prec prec_with))
      es
  | ListE es ->
    Fmt.pf ppf "[%a]"
      (Fmt.list ~sep:(Fmt.any ", ") (pp_math_prec prec_with))
      es
  | Unop (Not, Binop (Mem, a, b)) ->
    parens_if (prec_cmp < ctx) (fun ppf ->
        Fmt.pf ppf "%a ∉ %a"
          (pp_math_prec (prec_cmp + 1))
          a
          (pp_math_prec (prec_cmp + 1))
          b)
  | Unop (Not, Quant (Exists, v, s, p)) ->
    parens_if (prec_not < ctx) (fun ppf ->
        Fmt.pf ppf "¬∃%s ∈ %a (%a)" v
          (pp_math_prec prec_union)
          s (pp_math_prec prec_with) p)
  | Unop (Not, e1) ->
    parens_if (prec_not < ctx) (fun ppf ->
        Fmt.pf ppf "¬%a" (pp_math_prec prec_not) e1)
  | Unop (Neg, e1) -> Fmt.pf ppf "-%a" (pp_math_prec prec_neg) e1
  | Binop (op, a, b) ->
    let p = binop_prec op in
    parens_if (p < ctx) (fun ppf ->
        Fmt.pf ppf "%a %s %a" (pp_math_prec p) a (binop_math op)
          (pp_math_prec (p + 1))
          b)
  | Agg (a, e1) ->
    Fmt.pf ppf "%s(%a)"
      (String.lowercase_ascii (agg_name a))
      (pp_math_prec prec_with) e1
  | UnnestE e1 -> Fmt.pf ppf "⋃(%a)" (pp_math_prec prec_with) e1
  | If (c, a, b) ->
    Fmt.pf ppf "if %a then %a else %a" (pp_math_prec prec_or) c
      (pp_math_prec prec_or) a (pp_math_prec prec_with) b
  | VariantE (tag, e1) -> Fmt.pf ppf "%s!%a" tag (pp_math_prec prec_neg) e1
  | IsTag (e1, tag) ->
    Fmt.pf ppf "%a is %s" (pp_math_prec (prec_cmp + 1)) e1 tag
  | AsTag (e1, tag) ->
    Fmt.pf ppf "%a as %s" (pp_math_prec prec_postfix) e1 tag
  | Quant (q, v, s, p) ->
    let sym = match q with Exists -> "∃" | Forall -> "∀" in
    parens_if (prec_atom < ctx) (fun ppf ->
        Fmt.pf ppf "%s%s ∈ %a (%a)" sym v
          (pp_math_prec prec_union)
          s (pp_math_prec prec_with) p)
  | Let (v, def, body) ->
    Fmt.pf ppf "%a where %s = %a" (pp_math_prec prec_or) body v
      (pp_math_prec prec_or) def
  | Sfw _ -> pp ppf e

let pp_math ppf e = pp_math_prec prec_with ppf e
let to_math_string e = Fmt.str "@[%a@]" pp_math e
