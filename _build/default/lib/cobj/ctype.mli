(** Types of complex-object values.

    TM attribute types are built from basic types with the tuple, variant,
    set and list constructors, arbitrarily nested — the full constructor
    set of the paper's §3.1. *)

type t =
  | TAny  (** unknown type: the type of [Null] and of empty-set literals;
              bottom of the [join] order — joins with every type *)
  | TBool
  | TInt
  | TFloat
  | TString
  | TTuple of (string * t) list  (** fields sorted by label *)
  | TSet of t
  | TList of t
  | TVariant of (string * t) list
      (** tagged alternatives, sorted by tag; a value carries exactly one *)

val ttuple : (string * t) list -> t
(** Sorts fields; raises [Invalid_argument] on duplicate labels. *)

val tvariant : (string * t) list -> t
(** Sorts alternatives; raises [Invalid_argument] on duplicate tags. *)

val variant_case : string -> t -> t option
(** Payload type of a tag in a variant type. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val field : string -> t -> t option
(** Field type of a tuple type. *)

val element : t -> t option
(** Element type of a set or list type. *)

val is_collection : t -> bool
val is_numeric : t -> bool

val conforms : Value.t -> t -> bool
(** [conforms v t] checks [v] deeply against [t]. [Null] conforms to every
    type (it appears only as outerjoin padding). *)

val infer : Value.t -> t option
(** Best-effort type of a closed value. [None] for values containing [Null]
    or empty collections in positions where the element type is unknown...
    empty sets infer as [TSet TInt] by convention; heterogeneous collections
    yield [None]. *)

val join : t -> t -> t option
(** Least common type of two types, if any (used to type set literals and
    UNION): identical types join; [TInt]/[TFloat] join to [TFloat];
    tuples join fieldwise. *)

val pp : t Fmt.t
val to_string : t -> string
