module String_map = Map.Make (String)

type t = Table.t String_map.t

let empty = String_map.empty
let add table cat = String_map.add (Table.name table) table cat
let of_tables tables = List.fold_left (fun cat t -> add t cat) empty tables
let find name cat = String_map.find_opt name cat
let find_exn name cat = String_map.find name cat
let mem name cat = String_map.mem name cat
let names cat = List.map fst (String_map.bindings cat)
let tables cat = List.map snd (String_map.bindings cat)

let pp ppf cat =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:(Fmt.any "@,@,") Table.pp)
    (tables cat)
