(** In-memory tables (class extensions).

    A table is a named, duplicate-free collection of values of a common
    element type — the extension of a TM class. Row order is the set order
    of {!Value.compare}, which makes query results deterministic. *)

type t

val create : ?key:string list -> name:string -> elt:Ctype.t -> Value.t list -> t
(** Builds a table. Rows are deduplicated and sorted. Every row must conform
    to [elt] (raises [Invalid_argument] otherwise). [key] optionally declares
    a set of top-level tuple fields whose combination is unique — consulted by
    the physical planner (e.g. the hash nest join may only build on the right
    operand unless the join attribute is a key). The key claim is verified. *)

val name : t -> string
val elt : t -> Ctype.t
val rows : t -> Value.t list
val cardinality : t -> int
val key : t -> string list option
val to_value : t -> Value.t
(** The table's contents as a [Set] value. *)

val distinct_count : string -> t -> int option
(** Number of distinct values of a top-level tuple field, computed on first
    use and cached — the statistic behind the cost model's join-selectivity
    estimates. [None] when rows are not tuples or lack the field. *)

val index_lookup : string -> t -> Value.t -> Value.t list
(** [index_lookup field t v] — the rows whose top-level [field] equals [v],
    via a hash index built on first use and cached for the table's lifetime
    (tables are immutable). Rows lacking the field are simply absent from
    the index. Probing is O(1); the index powers the engine's index-join
    operators. *)

val has_index : string -> t -> bool
(** Whether the index for [field] has been materialized already (used by
    the cost model: a warm index has no build cost). *)

val pp : t Fmt.t
(** Renders as an aligned ASCII grid when the element type is a flat tuple
    type, one value per line otherwise. *)
