(** The catalog maps extension names (FROM-clause table names) to tables. *)

type t

val empty : t
val add : Table.t -> t -> t
(** Replaces any previous table of the same name. *)

val of_tables : Table.t list -> t
val find : string -> t -> Table.t option
val find_exn : string -> t -> Table.t
(** Raises [Not_found]. *)

val mem : string -> t -> bool
val names : t -> string list
(** Sorted. *)

val tables : t -> Table.t list
val pp : t Fmt.t
