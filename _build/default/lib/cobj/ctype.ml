type t =
  | TAny
  | TBool
  | TInt
  | TFloat
  | TString
  | TTuple of (string * t) list
  | TSet of t
  | TList of t
  | TVariant of (string * t) list

let sorted_unique what fields =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) fields
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg (Printf.sprintf "Ctype.%s: duplicate label %S" what a)
      else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let tvariant cases = TVariant (sorted_unique "tvariant" cases)

let variant_case tag = function
  | TVariant cases -> List.assoc_opt tag cases
  | TAny | TBool | TInt | TFloat | TString | TTuple _ | TSet _ | TList _ ->
    None

let ttuple fields =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) fields
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg (Printf.sprintf "Ctype.ttuple: duplicate label %S" a)
      else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  TTuple sorted

(* Structural compare is fine here: the representation contains no cycles or
   functional values, and field lists are sorted. *)
let compare (a : t) (b : t) = Stdlib.compare a b

let equal a b = compare a b = 0

let field l = function
  | TTuple fields -> List.assoc_opt l fields
  | TAny | TBool | TInt | TFloat | TString | TSet _ | TList _ | TVariant _ ->
    None

let element = function
  | TSet t | TList t -> Some t
  | TAny | TBool | TInt | TFloat | TString | TTuple _ | TVariant _ -> None

let is_collection = function
  | TSet _ | TList _ -> true
  | TAny | TBool | TInt | TFloat | TString | TTuple _ | TVariant _ -> false

let is_numeric = function
  | TInt | TFloat -> true
  | TAny | TBool | TString | TTuple _ | TSet _ | TList _ | TVariant _ -> false

let rec conforms v t =
  match v, t with
  | Value.Null, _ -> true
  | _, TAny -> true
  | Value.Bool _, TBool -> true
  | Value.Int _, TInt -> true
  | Value.Float _, TFloat -> true
  | Value.Int _, TFloat -> true
  | Value.String _, TString -> true
  | Value.Tuple fields, TTuple tfields ->
    List.length fields = List.length tfields
    && List.for_all2
         (fun (l, v) (tl, tv) -> String.equal l tl && conforms v tv)
         fields tfields
  | Value.Set xs, TSet te | Value.List xs, TList te ->
    List.for_all (fun x -> conforms x te) xs
  | Value.Variant (tag, payload), TVariant cases -> begin
    match List.assoc_opt tag cases with
    | Some tp -> conforms payload tp
    | None -> false
  end
  | ( Value.(
        Bool _ | Int _ | Float _ | String _ | Tuple _ | Set _ | List _
        | Variant _),
      ( TBool | TInt | TFloat | TString | TTuple _ | TSet _ | TList _
      | TVariant _ ) ) ->
    false

let rec join a b =
  if equal a b then Some a
  else
    match a, b with
    | TAny, t | t, TAny -> Some t
    | TInt, TFloat | TFloat, TInt -> Some TFloat
    | TTuple xs, TTuple ys when List.length xs = List.length ys ->
      let rec fields xs ys =
        match xs, ys with
        | [], [] -> Some []
        | (lx, tx) :: xs', (ly, ty) :: ys' when String.equal lx ly -> (
          match join tx ty, fields xs' ys' with
          | Some t, Some rest -> Some ((lx, t) :: rest)
          | _, _ -> None)
        | _, _ -> None
      in
      Option.map (fun fs -> TTuple fs) (fields xs ys)
    | TSet x, TSet y -> Option.map (fun t -> TSet t) (join x y)
    | TList x, TList y -> Option.map (fun t -> TList t) (join x y)
    | TVariant xs, TVariant ys ->
      (* width join: the union of alternatives; shared tags join payloads *)
      let rec union xs ys =
        match xs, ys with
        | [], rest | rest, [] -> Some rest
        | (tx, px) :: xs', (ty, py) :: ys' ->
          let c = String.compare tx ty in
          if c = 0 then
            match join px py, union xs' ys' with
            | Some p, Some rest -> Some ((tx, p) :: rest)
            | _, _ -> None
          else if c < 0 then
            Option.map (fun rest -> (tx, px) :: rest) (union xs' ys)
          else Option.map (fun rest -> (ty, py) :: rest) (union xs ys')
      in
      Option.map (fun cases -> TVariant cases) (union xs ys)
    | _, _ -> None

let rec infer v =
  match v with
  | Value.Null -> Some TAny
  | Value.Bool _ -> Some TBool
  | Value.Int _ -> Some TInt
  | Value.Float _ -> Some TFloat
  | Value.String _ -> Some TString
  | Value.Tuple fields ->
    let rec go = function
      | [] -> Some []
      | (l, x) :: rest -> (
        match infer x, go rest with
        | Some t, Some ts -> Some ((l, t) :: ts)
        | _, _ -> None)
    in
    Option.map (fun fs -> TTuple fs) (go fields)
  | Value.Set xs -> Option.map (fun t -> TSet t) (infer_elements xs)
  | Value.List xs -> Option.map (fun t -> TList t) (infer_elements xs)
  | Value.Variant (tag, payload) ->
    Option.map (fun t -> TVariant [ (tag, t) ]) (infer payload)

and infer_elements = function
  | [] -> Some TAny
  | x :: rest ->
    List.fold_left
      (fun acc y ->
        match acc, infer y with
        | Some t, Some ty -> join t ty
        | _, _ -> None)
      (infer x) rest

let rec pp ppf = function
  | TAny -> Fmt.string ppf "ANY"
  | TBool -> Fmt.string ppf "BOOL"
  | TInt -> Fmt.string ppf "INT"
  | TFloat -> Fmt.string ppf "FLOAT"
  | TString -> Fmt.string ppf "STRING"
  | TTuple fields ->
    Fmt.pf ppf "(@[%a@])"
      (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (l, t) ->
           Fmt.pf ppf "%s : %a" l pp t))
      fields
  | TSet t -> Fmt.pf ppf "P %a" pp_atom t
  | TList t -> Fmt.pf ppf "L %a" pp_atom t
  | TVariant cases ->
    Fmt.pf ppf "V (@[%a@])"
      (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (tag, t) ->
           Fmt.pf ppf "%s : %a" tag pp t))
      cases

and pp_atom ppf t =
  match t with
  | TSet _ | TList _ -> Fmt.pf ppf "(%a)" pp t
  | TAny | TBool | TInt | TFloat | TString | TTuple _ | TVariant _ -> pp ppf t

let to_string t = Fmt.str "%a" pp t
