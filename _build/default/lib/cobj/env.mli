(** Variable environments — the row representation of the execution engine.

    A row produced by a (possibly joined, nested) FROM clause is a binding of
    query variables to values: the join of [FROM X x, Y y] yields rows
    [{x ↦ …, y ↦ …}], and a nest join with label [z] extends rows with
    [z ↦ Set …] — exactly the paper's [WITH z = subquery] view. Bindings are
    kept in a deterministic order (most recent first) and variable names are
    unique. *)

type t

val empty : t
val bind : string -> Value.t -> t -> t
(** [bind x v env] shadows any previous binding of [x]. *)

val lookup : string -> t -> Value.t option
val find : string -> t -> Value.t
(** Raises [Value.Type_error] if unbound. *)

val unbind : string -> t -> t
val mem : string -> t -> bool
val vars : t -> string list
(** Bound variables, most recently bound first. *)

val project : string list -> t -> t
(** Keep only the given variables (in the order given). Missing variables are
    an error. *)

val bindings : t -> (string * Value.t) list
val of_bindings : (string * Value.t) list -> t

val append : t -> t -> t
(** [append a b] — bindings of [a] shadow those of [b]. *)

val to_value : t -> Value.t
(** The environment as a tuple value (for grouping keys / set semantics). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
