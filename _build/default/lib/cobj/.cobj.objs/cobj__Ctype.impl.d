lib/cobj/ctype.ml: Fmt List Option Printf Stdlib String Value
