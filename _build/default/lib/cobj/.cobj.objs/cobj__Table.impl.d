lib/cobj/table.ml: Ctype Fmt Hashtbl List String Value
