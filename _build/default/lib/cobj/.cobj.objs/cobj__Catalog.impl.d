lib/cobj/catalog.ml: Fmt List Map String Table
