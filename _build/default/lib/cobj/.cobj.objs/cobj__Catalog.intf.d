lib/cobj/catalog.mli: Fmt Table
