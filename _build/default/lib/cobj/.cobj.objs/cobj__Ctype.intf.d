lib/cobj/ctype.mli: Fmt Value
