lib/cobj/env.ml: Fmt List String Value
