lib/cobj/table.mli: Ctype Fmt Value
