lib/cobj/env.mli: Fmt Value
