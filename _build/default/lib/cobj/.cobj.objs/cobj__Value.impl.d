lib/cobj/value.ml: Bool Float Fmt Format Hashtbl Int List Printf String
