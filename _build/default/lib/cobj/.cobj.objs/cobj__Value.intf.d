lib/cobj/value.mli: Fmt Format Seq
