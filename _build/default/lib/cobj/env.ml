type t = (string * Value.t) list
(* Invariant: variable names are unique; most recent binding first. *)

let empty = []
let lookup x env = List.assoc_opt x env

let find x env =
  match lookup x env with
  | Some v -> v
  | None -> Value.type_error "unbound variable %s" x

let mem x env = List.mem_assoc x env
let unbind x env = List.filter (fun (y, _) -> not (String.equal x y)) env
let bind x v env = (x, v) :: unbind x env
let vars env = List.map fst env
let bindings env = env

let of_bindings bs =
  List.fold_left (fun env (x, v) -> bind x v env) empty (List.rev bs)

let project xs env = List.map (fun x -> (x, find x env)) xs

let append a b =
  List.fold_left (fun env (x, v) -> bind x v env) b (List.rev a)

let to_value env =
  Value.tuple (List.map (fun (x, v) -> (x, v)) env)

let compare a b = Value.compare (to_value a) (to_value b)
let equal a b = compare a b = 0

let pp ppf env =
  Fmt.pf ppf "{@[%a@]}"
    (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (x, v) ->
         Fmt.pf ppf "%s ↦ %a" x Value.pp v))
    env
