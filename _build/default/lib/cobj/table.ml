module Value_tbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  name : string;
  elt : Ctype.t;
  rows : Value.t list;
  key : string list option;
  distinct_cache : (string, int option) Hashtbl.t;
  index_cache : (string, Value.t list Value_tbl.t) Hashtbl.t;
}

let verify_key rows fields =
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun row ->
      let k = Value.tuple (List.map (fun f -> (f, Value.field f row)) fields) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    rows

let create ?key ~name ~elt values =
  List.iter
    (fun v ->
      if not (Ctype.conforms v elt) then
        invalid_arg
          (Fmt.str "Table.create %s: row %a does not conform to %a" name
             Value.pp v Ctype.pp elt))
    values;
  let rows = List.sort_uniq Value.compare values in
  (match key with
  | Some fields when not (verify_key rows fields) ->
    invalid_arg
      (Fmt.str "Table.create %s: declared key {%s} is not unique" name
         (String.concat ", " fields))
  | Some _ | None -> ());
  {
    name;
    elt;
    rows;
    key;
    distinct_cache = Hashtbl.create 4;
    index_cache = Hashtbl.create 4;
  }

let name t = t.name
let elt t = t.elt
let rows t = t.rows
let cardinality t = List.length t.rows
let key t = t.key
let to_value t = Value.Set t.rows

let build_index field t =
  let index = Value_tbl.create (max 16 (List.length t.rows)) in
  List.iter
    (fun row ->
      match Value.field_opt field row with
      | None -> ()
      | Some v ->
        let bucket = try Value_tbl.find index v with Not_found -> [] in
        Value_tbl.replace index v (row :: bucket))
    t.rows;
  (* restore table order within buckets *)
  Value_tbl.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) index;
  index

let index_lookup field t v =
  let index =
    match Hashtbl.find_opt t.index_cache field with
    | Some index -> index
    | None ->
      let index = build_index field t in
      Hashtbl.add t.index_cache field index;
      index
  in
  match Value_tbl.find_opt index v with
  | Some rows -> rows
  | None -> []

let has_index field t = Hashtbl.mem t.index_cache field

let distinct_count field t =
  match Hashtbl.find_opt t.distinct_cache field with
  | Some cached -> cached
  | None ->
    let result =
      let seen = Hashtbl.create 64 in
      let rec count = function
        | [] -> Some (Hashtbl.length seen)
        | row :: rest -> (
          match Value.field_opt field row with
          | None -> None
          | Some v ->
            Hashtbl.replace seen v ();
            count rest)
      in
      count t.rows
    in
    Hashtbl.add t.distinct_cache field result;
    result

(* Grid rendering for flat tuple rows; falls back to one value per line. *)
let pp ppf t =
  let flat_labels =
    match t.elt with
    | Ctype.TTuple fields -> Some (List.map fst fields)
    | Ctype.(TAny | TBool | TInt | TFloat | TString | TSet _ | TList _
             | TVariant _) ->
      None
  in
  match flat_labels with
  | None ->
    Fmt.pf ppf "@[<v>%s (%d rows)@,%a@]" t.name (cardinality t)
      (Fmt.list ~sep:Fmt.cut Value.pp)
      t.rows
  | Some labels ->
    let cell row l = Value.to_string (Value.field l row) in
    let widths =
      List.map
        (fun l ->
          List.fold_left
            (fun w row -> max w (String.length (cell row l)))
            (String.length l) t.rows)
        labels
    in
    let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
    let render_row cells =
      String.concat " | " (List.map2 pad cells widths)
    in
    let header = render_row labels in
    let rule = String.make (String.length header) '-' in
    Fmt.pf ppf "@[<v>%s (%d rows)@,%s@,%s" t.name (cardinality t) header rule;
    List.iter
      (fun row ->
        Fmt.pf ppf "@,%s" (render_row (List.map (cell row) labels)))
      t.rows;
    Fmt.pf ppf "@]"
