(** Deterministic splitmix64 PRNG — benches and property tests must be
    reproducible across runs and machines, so no [Random] state leaks in. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val int : t -> int -> int
(** [int t n] — uniform in [0, n); [n] must be positive. *)

val bool : t -> float -> bool
(** [bool t p] — true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] — up to [k] elements drawn without replacement. *)

val split : t -> t
(** An independent generator (for parallel streams). *)
