lib/workload/gen.mli: Cobj
