lib/workload/gen.ml: Cobj List Printf Prng
