lib/workload/prng.mli:
