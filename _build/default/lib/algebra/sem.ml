module Value = Cobj.Value
module Env = Cobj.Env
module Interp = Lang.Interp

let eval = Interp.eval
let truth = Interp.truth

let canonical envs = List.sort_uniq Env.compare envs

let rec rows catalog env plan =
  let result =
    match plan with
    | Plan.Unit -> [ env ]
    | Plan.Table { name; var } ->
      let table = Cobj.Catalog.find_exn name catalog in
      List.map (fun v -> Env.bind var v env) (Cobj.Table.rows table)
    | Plan.Select { pred; input } ->
      List.filter (fun r -> truth catalog r pred) (rows catalog env input)
    | Plan.Join { pred; left; right } ->
      product catalog env left right
      |> List.filter (fun r -> truth catalog r pred)
    | Plan.Semijoin { pred; left; right } ->
      let rrows = rows catalog env right in
      rows catalog env left
      |> List.filter (fun l ->
             List.exists (fun r -> truth catalog (Env.append r l) pred) rrows)
    | Plan.Antijoin { pred; left; right } ->
      let rrows = rows catalog env right in
      rows catalog env left
      |> List.filter (fun l ->
             not
               (List.exists
                  (fun r -> truth catalog (Env.append r l) pred)
                  rrows))
    | Plan.Outerjoin { pred; left; right } ->
      let rrows = rows catalog env right in
      let rvars = Plan.vars_of right in
      rows catalog env left
      |> List.concat_map (fun l ->
             let matches =
               List.filter_map
                 (fun r ->
                   let merged = Env.append r l in
                   if truth catalog merged pred then Some merged else None)
                 rrows
             in
             match matches with
             | [] ->
               [ List.fold_left (fun acc v -> Env.bind v Value.Null acc) l rvars ]
             | _ :: _ -> matches)
    | Plan.Nestjoin { pred; func; label; left; right } ->
      let rrows = rows catalog env right in
      rows catalog env left
      |> List.map (fun l ->
             let members =
               List.filter_map
                 (fun r ->
                   let merged = Env.append r l in
                   if truth catalog merged pred then
                     Some (eval catalog merged func)
                   else None)
                 rrows
             in
             Env.bind label (Value.set members) l)
    | Plan.Unnest { expr; var; input } ->
      rows catalog env input
      |> List.concat_map (fun r ->
             Value.elements (eval catalog r expr)
             |> List.map (fun x -> Env.bind var x r))
    | Plan.Nest { by; label; func; nulls; input } ->
      let input_rows = rows catalog env input in
      let key r = Env.to_value (Env.project by r) in
      let groups = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun r ->
          let k = key r in
          match Hashtbl.find_opt groups k with
          | Some members -> Hashtbl.replace groups k (r :: members)
          | None ->
            order := (k, r) :: !order;
            Hashtbl.add groups k [ r ])
        input_rows;
      let padded r =
        nulls <> []
        && List.for_all
             (fun v -> Value.equal (Env.find v r) Value.Null)
             nulls
      in
      List.rev_map
        (fun (k, representative) ->
          let members = Hashtbl.find groups k in
          let set =
            Value.set
              (List.filter_map
                 (fun r ->
                   if padded r then None else Some (eval catalog r func))
                 members)
          in
          let base =
            List.fold_left
              (fun acc v -> Env.bind v (Env.find v representative) acc)
              env by
          in
          Env.bind label set base)
        !order
    | Plan.Extend { var; expr; input } ->
      rows catalog env input
      |> List.map (fun r -> Env.bind var (eval catalog r expr) r)
    | Plan.Project { vars; input } ->
      rows catalog env input
      |> List.map (fun r -> Env.append (Env.project vars r) env)
    | Plan.Apply { var; subquery; input } ->
      rows catalog env input
      |> List.map (fun r -> Env.bind var (run_under catalog r subquery) r)
    | Plan.Union { left; right } ->
      rows catalog env left @ rows catalog env right
  in
  canonical result

and product catalog env left right =
  let lrows = rows catalog env left in
  List.concat_map
    (fun l ->
      (* The right side of a product never references left variables (that
         would be a dependency, expressed by Apply/Unnest instead), but we
         evaluate it under the ambient env only, for clarity. *)
      List.map (fun r -> Env.append r l) (rows catalog env right))
    lrows

and run_under catalog env { Plan.plan; result } =
  let produced = rows catalog env plan in
  Value.set (List.map (fun r -> eval catalog r result) produced)

let run catalog query = run_under catalog Env.empty query
