(** Denotational semantics of the logical algebra — the test oracle.

    Deliberately simple list-based evaluation with no implementation choices;
    every physical operator in [Engine] and every rewrite in [Core] is tested
    against it. Rows extend the ambient environment, so that an [Apply]
    subquery (which references correlation variables of the outer row) can be
    evaluated by passing the outer row as the ambient environment. *)

val rows :
  Cobj.Catalog.t -> Cobj.Env.t -> Plan.plan -> Cobj.Env.t list
(** The rows produced by a plan under an ambient environment, in a canonical
    (sorted) order, duplicate-free. *)

val run : Cobj.Catalog.t -> Plan.query -> Cobj.Value.t
(** The (set) value of a closed query. *)

val run_under : Cobj.Catalog.t -> Cobj.Env.t -> Plan.query -> Cobj.Value.t
