lib/algebra/typing.ml: Cobj Fmt Lang List Plan Result
