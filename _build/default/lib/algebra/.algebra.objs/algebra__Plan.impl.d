lib/algebra/plan.ml: Fmt Format Lang List String
