lib/algebra/plan.mli: Fmt Lang
