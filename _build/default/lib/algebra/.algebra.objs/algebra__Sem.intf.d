lib/algebra/sem.mli: Cobj Plan
