lib/algebra/sem.ml: Cobj Hashtbl Lang List Plan
