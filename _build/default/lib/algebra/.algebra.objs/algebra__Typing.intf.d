lib/algebra/typing.mli: Cobj Fmt Plan
