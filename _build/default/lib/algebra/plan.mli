(** Logical algebra for complex objects (the paper's ADL, restricted to what
    the unnesting development needs).

    Rows are environments binding query variables to complex values
    ({!Cobj.Env}); scalar expressions inside operators are plan-free
    {!Lang.Ast} expressions evaluated under the row environment. A complete
    query pairs a plan with a result expression: the query's value is
    [{ result(env) | env ∈ plan }].

    The naive translation of a correlated subquery produces {!plan.Apply}
    (a dependent join, re-evaluating the subquery per row); the whole point
    of the paper — and of [Core.Decorrelate] — is to remove Apply in favour
    of [Join]/[Semijoin]/[Antijoin]/[Nestjoin]. *)

type query = {
  plan : plan;
  result : Lang.Ast.expr;  (** evaluated under each row environment *)
}

and plan =
  | Unit  (** one row binding nothing: the ambient environment; identity of
              the (dependent) product — FROM clauses over expressions start
              from it *)
  | Table of { name : string; var : string }
      (** scan extension [name], binding [var] to each element *)
  | Select of { pred : Lang.Ast.expr; input : plan }
  | Join of { pred : Lang.Ast.expr; left : plan; right : plan }
      (** [pred = true] gives the cartesian product *)
  | Semijoin of { pred : Lang.Ast.expr; left : plan; right : plan }
  | Antijoin of { pred : Lang.Ast.expr; left : plan; right : plan }
  | Outerjoin of { pred : Lang.Ast.expr; left : plan; right : plan }
      (** left outer join: dangling left rows keep the right-hand variables
          bound to [Null] *)
  | Nestjoin of {
      pred : Lang.Ast.expr;
      func : Lang.Ast.expr;  (** G, applied to matching row environments *)
      label : string;        (** fresh variable receiving the grouped set *)
      left : plan;
      right : plan;
    }  (** the paper's Δ: [x ++ (label = { func(x,y) | y, pred(x,y) })] *)
  | Unnest of { expr : Lang.Ast.expr; var : string; input : plan }
      (** dependent iteration μ: for each row, bind [var] to every element
          of [expr] (set- or list-valued); rows with an empty collection
          produce nothing *)
  | Nest of {
      by : string list;      (** grouping variables, kept in the output *)
      label : string;        (** variable receiving the grouped set *)
      func : Lang.Ast.expr;  (** applied to each member row *)
      nulls : string list;
          (** ν* (the paper's NULL-aware nest): member rows in which all
              these variables are [Null] contribute nothing, so an
              outerjoin-padded group nests to ∅. Empty list = plain ν. *)
      input : plan;
    }
  | Extend of { var : string; expr : Lang.Ast.expr; input : plan }
      (** bind [var := expr(row)] (the WITH clause) *)
  | Project of { vars : string list; input : plan }
      (** keep only [vars]; set semantics — duplicates collapse *)
  | Apply of { var : string; subquery : query; input : plan }
      (** dependent join: bind [var] to the (set) value of [subquery]
          evaluated under the current row — the naive, nested-loop form of a
          correlated subquery *)
  | Union of { left : plan; right : plan }
      (** set union of rows; both operands must bind the same variables *)

(** {1 Schemas and scoping} *)

val vars_of : plan -> string list
(** Variables bound in rows produced by the plan, outermost binding last. *)

val free_vars : plan -> Lang.Ast.String_set.t
(** Variables a plan needs from an enclosing scope (correlation variables).
    A closed (decorrelated) plan has none. *)

val query_free_vars : query -> Lang.Ast.String_set.t

val plan_free_expr : Lang.Ast.expr -> bool
(** No [Sfw] node inside: the expression is a legal operator argument. *)

val well_formed : plan -> (unit, string) result
(** Checks operator arguments are plan-free, bound variables are unique along
    each path, and [Project]/[Nest] reference bound variables. *)

(** {1 Traversal} *)

val map_children : (plan -> plan) -> plan -> plan
(** Apply a function to immediate sub-plans (including Apply subquery). *)

val fold : ('a -> plan -> 'a) -> 'a -> plan -> 'a
(** Pre-order fold over all nodes, descending into Apply subqueries. *)

val size : plan -> int

(** {1 Pretty printing} *)

val pp : plan Fmt.t
(** Indented operator tree (used by EXPLAIN). *)

val pp_query : query Fmt.t
val to_string : plan -> string
