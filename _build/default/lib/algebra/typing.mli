(** Schema inference for logical plans.

    The schema of a plan is the typing environment of the rows it produces:
    variable name to type, in binding order (see {!Plan.vars_of}). *)

type schema = (string * Cobj.Ctype.t) list

val pp_schema : schema Fmt.t

val schema_of :
  Cobj.Catalog.t -> schema -> Plan.plan -> (schema, string) result
(** [schema_of catalog ambient plan] — [ambient] types the correlation
    variables available from an enclosing scope (empty for closed plans). *)

val query_type :
  Cobj.Catalog.t -> schema -> Plan.query -> (Cobj.Ctype.t, string) result
(** The (set) type of a query's value. *)

val query_type_exn : Cobj.Catalog.t -> Plan.query -> Cobj.Ctype.t
(** Closed query; raises [Invalid_argument] on type errors. *)
