module Ast = Lang.Ast

type query = {
  plan : plan;
  result : Ast.expr;
}

and plan =
  | Unit
  | Table of { name : string; var : string }
  | Select of { pred : Ast.expr; input : plan }
  | Join of { pred : Ast.expr; left : plan; right : plan }
  | Semijoin of { pred : Ast.expr; left : plan; right : plan }
  | Antijoin of { pred : Ast.expr; left : plan; right : plan }
  | Outerjoin of { pred : Ast.expr; left : plan; right : plan }
  | Nestjoin of {
      pred : Ast.expr;
      func : Ast.expr;
      label : string;
      left : plan;
      right : plan;
    }
  | Unnest of { expr : Ast.expr; var : string; input : plan }
  | Nest of {
      by : string list;
      label : string;
      func : Ast.expr;
      nulls : string list;
      input : plan;
    }
  | Extend of { var : string; expr : Ast.expr; input : plan }
  | Project of { vars : string list; input : plan }
  | Apply of { var : string; subquery : query; input : plan }
  | Union of { left : plan; right : plan }

module Sset = Ast.String_set

let rec vars_of = function
  | Unit -> []
  | Table { var; _ } -> [ var ]
  | Select { input; _ } -> vars_of input
  | Join { left; right; _ } | Outerjoin { left; right; _ } ->
    vars_of left @ vars_of right
  | Semijoin { left; _ } | Antijoin { left; _ } -> vars_of left
  | Nestjoin { left; label; _ } -> vars_of left @ [ label ]
  | Unnest { var; input; _ } -> vars_of input @ [ var ]
  | Nest { by; label; _ } -> by @ [ label ]
  | Extend { var; input; _ } -> vars_of input @ [ var ]
  | Project { vars; _ } -> vars
  | Apply { var; input; _ } -> vars_of input @ [ var ]
  | Union { left; _ } -> vars_of left

let rec free_vars plan =
  let expr_free bound e = Sset.diff (Ast.free_vars e) bound in
  match plan with
  | Unit | Table _ -> Sset.empty
  | Select { pred; input } ->
    Sset.union (free_vars input)
      (expr_free (Sset.of_list (vars_of input)) pred)
  | Join { pred; left; right }
  | Semijoin { pred; left; right }
  | Antijoin { pred; left; right }
  | Outerjoin { pred; left; right } ->
    let bound = Sset.of_list (vars_of left @ vars_of right) in
    Sset.union
      (Sset.union (free_vars left) (free_vars right))
      (expr_free bound pred)
  | Nestjoin { pred; func; left; right; _ } ->
    let bound = Sset.of_list (vars_of left @ vars_of right) in
    Sset.union
      (Sset.union (free_vars left) (free_vars right))
      (Sset.union (expr_free bound pred) (expr_free bound func))
  | Unnest { expr; input; _ } ->
    Sset.union (free_vars input)
      (expr_free (Sset.of_list (vars_of input)) expr)
  | Nest { func; input; _ } ->
    Sset.union (free_vars input)
      (expr_free (Sset.of_list (vars_of input)) func)
  | Extend { expr; input; _ } ->
    Sset.union (free_vars input)
      (expr_free (Sset.of_list (vars_of input)) expr)
  | Project { input; _ } -> free_vars input
  | Apply { subquery; input; _ } ->
    Sset.union (free_vars input)
      (Sset.diff (query_free_vars subquery)
         (Sset.of_list (vars_of input)))
  | Union { left; right } -> Sset.union (free_vars left) (free_vars right)

and query_free_vars { plan; result } =
  Sset.union (free_vars plan)
    (Sset.diff (Ast.free_vars result) (Sset.of_list (vars_of plan)))

let rec plan_free_expr e =
  match e with
  | Ast.Sfw _ -> false
  | Ast.Const _ | Ast.Var _ | Ast.TableRef _ -> true
  | Ast.Field (e1, _) | Ast.Unop (_, e1) | Ast.Agg (_, e1) | Ast.UnnestE e1
  | Ast.VariantE (_, e1) | Ast.IsTag (e1, _) | Ast.AsTag (e1, _) ->
    plan_free_expr e1
  | Ast.If (c, a, b) ->
    plan_free_expr c && plan_free_expr a && plan_free_expr b
  | Ast.TupleE fields -> List.for_all (fun (_, e1) -> plan_free_expr e1) fields
  | Ast.SetE es | Ast.ListE es -> List.for_all plan_free_expr es
  | Ast.Binop (_, a, b) -> plan_free_expr a && plan_free_expr b
  | Ast.Quant (_, _, s, p) -> plan_free_expr s && plan_free_expr p
  | Ast.Let (_, d, b) -> plan_free_expr d && plan_free_expr b

let well_formed plan =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_expr what e k =
    if plan_free_expr e then k ()
    else err "%s contains an SFW block: %s" what (Lang.Pretty.to_string e)
  in
  let rec go plan =
    let dup_free vars =
      let sorted = List.sort String.compare vars in
      let rec dup = function
        | a :: b :: _ when String.equal a b -> Some a
        | _ :: rest -> dup rest
        | [] -> None
      in
      dup sorted
    in
    match dup_free (vars_of plan) with
    | Some v -> err "variable %s bound twice in %s" v "plan"
    | None -> (
      match plan with
      | Unit | Table _ -> Ok ()
      | Select { pred; input } -> check_expr "selection" pred (fun () -> go input)
      | Join { pred; left; right }
      | Semijoin { pred; left; right }
      | Antijoin { pred; left; right }
      | Outerjoin { pred; left; right } ->
        check_expr "join predicate" pred (fun () ->
            match go left with Ok () -> go right | Error _ as e -> e)
      | Nestjoin { pred; func; left; right; _ } ->
        check_expr "nest join predicate" pred (fun () ->
            check_expr "nest join function" func (fun () ->
                match go left with Ok () -> go right | Error _ as e -> e))
      | Unnest { expr; input; _ } ->
        check_expr "unnest expression" expr (fun () -> go input)
      | Nest { by; func; input; _ } ->
        let bound = vars_of input in
        let missing = List.filter (fun v -> not (List.mem v bound)) by in
        if missing <> [] then
          err "nest groups by unbound variables %s"
            (String.concat ", " missing)
        else check_expr "nest function" func (fun () -> go input)
      | Extend { expr; input; _ } ->
        check_expr "extend expression" expr (fun () -> go input)
      | Project { vars; input } ->
        let bound = vars_of input in
        let missing = List.filter (fun v -> not (List.mem v bound)) vars in
        if missing <> [] then
          err "projection on unbound variables %s" (String.concat ", " missing)
        else go input
      | Apply { subquery; input; _ } ->
        check_expr "apply result" subquery.result (fun () ->
            match go subquery.plan with
            | Ok () -> go input
            | Error _ as e -> e)
      | Union { left; right } ->
        let lv = List.sort String.compare (vars_of left) in
        let rv = List.sort String.compare (vars_of right) in
        if lv <> rv then
          err "union operands bind different variables: {%s} vs {%s}"
            (String.concat ", " lv) (String.concat ", " rv)
        else begin
          match go left with Ok () -> go right | Error _ as e -> e
        end)
  in
  go plan

let map_children f plan =
  match plan with
  | Unit | Table _ -> plan
  | Select r -> Select { r with input = f r.input }
  | Join r -> Join { r with left = f r.left; right = f r.right }
  | Semijoin r -> Semijoin { r with left = f r.left; right = f r.right }
  | Antijoin r -> Antijoin { r with left = f r.left; right = f r.right }
  | Outerjoin r -> Outerjoin { r with left = f r.left; right = f r.right }
  | Nestjoin r -> Nestjoin { r with left = f r.left; right = f r.right }
  | Unnest r -> Unnest { r with input = f r.input }
  | Nest r -> Nest { r with input = f r.input }
  | Extend r -> Extend { r with input = f r.input }
  | Project r -> Project { r with input = f r.input }
  | Apply r ->
    Apply
      {
        r with
        input = f r.input;
        subquery = { r.subquery with plan = f r.subquery.plan };
      }
  | Union r -> Union { left = f r.left; right = f r.right }

let rec fold f acc plan =
  let acc = f acc plan in
  match plan with
  | Unit | Table _ -> acc
  | Select { input; _ }
  | Unnest { input; _ }
  | Nest { input; _ }
  | Extend { input; _ }
  | Project { input; _ } ->
    fold f acc input
  | Join { left; right; _ }
  | Semijoin { left; right; _ }
  | Antijoin { left; right; _ }
  | Outerjoin { left; right; _ }
  | Nestjoin { left; right; _ } ->
    fold f (fold f acc left) right
  | Apply { subquery; input; _ } -> fold f (fold f acc subquery.plan) input
  | Union { left; right } -> fold f (fold f acc left) right

let size plan = fold (fun n _ -> n + 1) 0 plan

let rec pp ppf plan =
  let e = Lang.Pretty.pp in
  match plan with
  | Unit -> Fmt.pf ppf "unit"
  | Table { name; var } -> Fmt.pf ppf "table %s %s" name var
  | Select { pred; input } ->
    Fmt.pf ppf "@[<v>select [%a]@,%a@]" e pred pp_child_last input
  | Join { pred; left; right } -> pp_binary ppf "join" pred left right
  | Semijoin { pred; left; right } -> pp_binary ppf "semijoin" pred left right
  | Antijoin { pred; left; right } -> pp_binary ppf "antijoin" pred left right
  | Outerjoin { pred; left; right } ->
    pp_binary ppf "outerjoin" pred left right
  | Nestjoin { pred; func; label; left; right } ->
    Fmt.pf ppf "@[<v>nestjoin [%a] func=%a label=%s@,%a@,%a@]" e pred e func
      label pp_child_mid left pp_child_last right
  | Unnest { expr; var; input } ->
    Fmt.pf ppf "@[<v>unnest %s in %a@,%a@]" var e expr pp_child_last input
  | Nest { by; label; func; nulls; input } ->
    let star = if nulls = [] then "" else "*" in
    Fmt.pf ppf "@[<v>nest%s by=[%s] label=%s func=%a@,%a@]" star
      (String.concat ", " by) label e func pp_child_last input
  | Extend { var; expr; input } ->
    Fmt.pf ppf "@[<v>extend %s = %a@,%a@]" var e expr pp_child_last input
  | Project { vars; input } ->
    Fmt.pf ppf "@[<v>project [%s]@,%a@]" (String.concat ", " vars)
      pp_child_last input
  | Apply { var; subquery; input } ->
    Fmt.pf ppf "@[<v>apply %s = (result %a)@,%a@,%a@]" var e subquery.result
      pp_child_mid subquery.plan pp_child_last input
  | Union { left; right } ->
    Fmt.pf ppf "@[<v>union@,%a@,%a@]" pp_child_mid left pp_child_last right

and pp_child_mid ppf child = Fmt.pf ppf "├─ @[<v>%a@]" pp child
and pp_child_last ppf child = Fmt.pf ppf "└─ @[<v>%a@]" pp child

and pp_binary ppf name pred left right =
  Fmt.pf ppf "@[<v>%s [%a]@,%a@,%a@]" name Lang.Pretty.pp pred pp_child_mid
    left pp_child_last right

let pp_query ppf { plan; result } =
  Fmt.pf ppf "@[<v>result %a@,%a@]" Lang.Pretty.pp result pp_child_last plan

let to_string plan = Fmt.str "%a" pp plan
